//! The threaded runtime: the same [`Proto`] state machines on real threads.
//!
//! One OS thread per node plus a router thread. Links are crossbeam
//! channels; the router holds every in-flight message in a delay heap and
//! forwards it when its (scaled) latency elapses, so the threaded engine
//! exhibits the same WAN behaviour as the simulator — just in wall-clock
//! time and without determinism.
//!
//! `time_scale` maps virtual time to wall time (`wall = virtual × scale`), so
//! integration tests can replay a 100-second PlanetLab scenario in a second.
//!
//! ## Sharded mode
//!
//! For protocols implementing [`ShardedProto`], [`ShardedEngine`] runs
//! `ThreadedConfig::shards` workers **per node**, each owning one shard of
//! the node's state, with a sharded mailbox: every message is routed to the
//! worker `ShardedProto::shard_of(msg, S)` of its destination node, so
//! messages about one object always land on the same FIFO worker (per-object
//! order preserved) while disjoint objects are processed concurrently. The
//! delay-router is sharded by the same function — shard `s` traffic of all
//! nodes flows through router `s` — so no single thread serialises the
//! cluster's forwarding.

use crate::proto::{Context, Proto, ShardedProto, TimerId, Wire};
use crate::stats::{NetStats, StatsSnapshot};
use crate::topology::Topology;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use idea_types::{NodeId, SimDuration, SimTime};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Threaded-engine configuration.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Seed for the router's latency sampling and per-node RNGs.
    pub seed: u64,
    /// Wall seconds per virtual second. `0.01` replays a 100 s scenario in
    /// roughly one wall second.
    pub time_scale: f64,
    /// Shard workers per node ([`ShardedEngine`] only; the plain
    /// [`ThreadedEngine`] always runs one worker per node and requires this
    /// to be ≤ 1). Every node's [`ShardedProto::shard_count`] must equal it.
    pub shards: usize,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig { seed: 0, time_scale: 1.0, shards: 1 }
    }
}

/// Reads the shard count for threaded runs from the `THREADED_SHARDS`
/// environment variable (the CI matrix knob), defaulting to `default`.
pub fn shards_from_env(default: usize) -> usize {
    std::env::var("THREADED_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(default)
}

/// Boxed closure run on a node's own thread (see [`ThreadedEngine::invoke`]).
type InvokeFn<P> = Box<dyn FnOnce(&mut P, &mut dyn Context<<P as Proto>::Msg>) + Send>;

enum Envelope<P: Proto> {
    Net { from: NodeId, msg: P::Msg },
    Invoke(InvokeFn<P>),
    Stop,
}

enum RouterCmd<M> {
    Send { from: NodeId, to: NodeId, msg: M },
    Stop,
}

/// In-flight message inside the router's delay heap.
struct InFlight<M> {
    due: Instant,
    seq: u64,
    from: NodeId,
    to: NodeId,
    msg: M,
}

impl<M> PartialEq for InFlight<M> {
    fn eq(&self, o: &Self) -> bool {
        self.due == o.due && self.seq == o.seq
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        self.due.cmp(&o.due).then_with(|| self.seq.cmp(&o.seq))
    }
}

/// Node-thread context handed to protocol callbacks.
struct ThreadCtx<'a, M> {
    me: NodeId,
    n: usize,
    start: Instant,
    scale: f64,
    router: &'a Sender<RouterCmd<M>>,
    timers: &'a mut BinaryHeap<Reverse<(Instant, u64, u64)>>,
    cancelled: &'a mut HashSet<u64>,
    next_timer: &'a mut u64,
    rng: &'a mut StdRng,
}

impl<M> Context<M> for ThreadCtx<'_, M> {
    fn now(&self) -> SimTime {
        let wall = self.start.elapsed().as_micros() as f64;
        SimTime((wall / self.scale) as u64)
    }
    fn me(&self) -> NodeId {
        self.me
    }
    fn node_count(&self) -> usize {
        self.n
    }
    fn send(&mut self, to: NodeId, msg: M) {
        // A closed router means the engine is stopping; drop silently.
        let _ = self.router.send(RouterCmd::Send { from: self.me, to, msg });
    }
    fn set_timer(&mut self, delay: SimDuration, kind: u64) -> TimerId {
        let id = *self.next_timer;
        *self.next_timer += 1;
        let wall = Duration::from_secs_f64(delay.as_secs_f64() * self.scale);
        self.timers.push(Reverse((Instant::now() + wall, id, kind)));
        TimerId(id)
    }
    fn cancel_timer(&mut self, timer: TimerId) {
        self.cancelled.insert(timer.0);
    }
    fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }
}

/// The threaded engine handle. Dropping without [`ThreadedEngine::stop`]
/// detaches the threads; call `stop` to join and recover node states.
pub struct ThreadedEngine<P: Proto + 'static> {
    node_txs: Vec<Sender<Envelope<P>>>,
    router_tx: Sender<RouterCmd<P::Msg>>,
    node_handles: Vec<thread::JoinHandle<P>>,
    router_handle: Option<thread::JoinHandle<()>>,
    stats: Arc<Mutex<NetStats>>,
    start: Instant,
    scale: f64,
}

impl<P: Proto + 'static> ThreadedEngine<P> {
    /// Starts one thread per node plus the router, running `on_start` on
    /// each node thread.
    pub fn start(topo: Topology, cfg: ThreadedConfig, nodes: Vec<P>) -> Self {
        assert_eq!(nodes.len(), topo.len(), "one protocol instance per topology node");
        assert!(cfg.time_scale > 0.0, "time_scale must be positive");
        assert!(cfg.shards <= 1, "shards > 1 needs ShardedEngine (a ShardedProto protocol)");
        let n = nodes.len();
        let stats = Arc::new(Mutex::new(NetStats::new()));
        let start = Instant::now();

        let (router_tx, router_rx) = unbounded::<RouterCmd<P::Msg>>();
        let mut node_txs = Vec::with_capacity(n);
        let mut node_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope<P>>();
            node_txs.push(tx);
            node_rxs.push(rx);
        }

        // Router thread: delay heap + latency sampling.
        let router_handle = {
            let txs = node_txs.clone();
            let stats = Arc::clone(&stats);
            let scale = cfg.time_scale;
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0070_07e5);
            thread::Builder::new()
                .name("idea-router".into())
                .spawn(move || {
                    router_loop(topo, scale, txs, router_rx, stats, &mut rng);
                })
                .expect("spawn router")
        };

        // Node threads.
        let mut node_handles = Vec::with_capacity(n);
        for (i, (mut proto, inbox)) in nodes.into_iter().zip(node_rxs).enumerate() {
            let router = router_tx.clone();
            let scale = cfg.time_scale;
            let seed = cfg.seed.wrapping_add(1 + i as u64);
            let handle = thread::Builder::new()
                .name(format!("idea-node-{i}"))
                .spawn(move || {
                    node_loop(NodeId(i as u32), n, start, scale, &mut proto, inbox, router, seed);
                    proto
                })
                .expect("spawn node");
            node_handles.push(handle);
        }

        ThreadedEngine {
            node_txs,
            router_tx,
            node_handles,
            router_handle: Some(router_handle),
            stats,
            start,
            scale: cfg.time_scale,
        }
    }

    /// Current virtual time as observed by the engine.
    pub fn now(&self) -> SimTime {
        SimTime((self.start.elapsed().as_micros() as f64 / self.scale) as u64)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.node_txs.len()
    }

    /// True when the engine has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_txs.is_empty()
    }

    /// Fire-and-forget action on a node (e.g. inject a write).
    pub fn invoke(
        &self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut dyn Context<P::Msg>) + Send + 'static,
    ) {
        let _ = self.try_invoke(id, f);
    }

    /// Fallible fire-and-forget: `false` when the node thread's mailbox is
    /// closed (the engine is stopping or stopped), so service frontends can
    /// surface a typed error instead of dropping the command silently.
    #[must_use]
    pub fn try_invoke(
        &self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut dyn Context<P::Msg>) + Send + 'static,
    ) -> bool {
        self.node_txs[id.index()].send(Envelope::Invoke(Box::new(f))).is_ok()
    }

    /// Runs `f` on the node thread and waits for its result.
    ///
    /// # Panics
    /// Panics when the node thread is gone; use
    /// [`ThreadedEngine::try_query`] where that must be an error instead.
    pub fn query<R: Send + 'static>(
        &self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut dyn Context<P::Msg>) -> R + Send + 'static,
    ) -> R {
        self.try_query(id, f).expect("node thread alive")
    }

    /// Like [`ThreadedEngine::query`], but returns `None` instead of
    /// panicking when the node thread is gone — either the mailbox is
    /// already closed, or the thread dies before replying.
    pub fn try_query<R: Send + 'static>(
        &self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut dyn Context<P::Msg>) -> R + Send + 'static,
    ) -> Option<R> {
        let (tx, rx) = bounded(1);
        if !self.try_invoke(id, move |p, ctx| {
            let _ = tx.send(f(p, ctx));
        }) {
            return None;
        }
        rx.recv().ok()
    }

    /// Sleeps for `d` of *virtual* time (scaled to wall time).
    pub fn sleep_virtual(&self, d: SimDuration) {
        thread::sleep(Duration::from_secs_f64(d.as_secs_f64() * self.scale));
    }

    /// Snapshot of network statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.lock().snapshot()
    }

    /// Stops all threads and returns the final node states in id order.
    ///
    /// The router is stopped and joined **first**: its shutdown path
    /// flushes every message still in the delay heap into the node
    /// mailboxes, and only after that flush has happened do the nodes get
    /// their `Stop` envelope — channel FIFO order then guarantees each
    /// node drains the flushed messages before it exits. (Stopping nodes
    /// first delivered the flush into mailboxes nobody reads, silently
    /// dropping in-flight protocol traffic on shutdown.)
    pub fn stop(mut self) -> Vec<P> {
        let _ = self.router_tx.send(RouterCmd::Stop);
        if let Some(h) = self.router_handle.take() {
            let _ = h.join();
        }
        for tx in &self.node_txs {
            let _ = tx.send(Envelope::Stop);
        }
        self.node_handles.drain(..).map(|h| h.join().expect("node thread panicked")).collect()
    }
}

#[allow(clippy::too_many_arguments)]
fn node_loop<P: Proto>(
    me: NodeId,
    n: usize,
    start: Instant,
    scale: f64,
    proto: &mut P,
    inbox: Receiver<Envelope<P>>,
    router: Sender<RouterCmd<P::Msg>>,
    seed: u64,
) {
    let mut timers: BinaryHeap<Reverse<(Instant, u64, u64)>> = BinaryHeap::new();
    let mut cancelled: HashSet<u64> = HashSet::new();
    let mut next_timer: u64 = 0;
    let mut rng = StdRng::seed_from_u64(seed);

    macro_rules! ctx {
        () => {
            ThreadCtx {
                me,
                n,
                start,
                scale,
                router: &router,
                timers: &mut timers,
                cancelled: &mut cancelled,
                next_timer: &mut next_timer,
                rng: &mut rng,
            }
        };
    }

    {
        let mut c = ctx!();
        proto.on_start(&mut c);
    }

    loop {
        // Fire due timers first.
        loop {
            let due_now = match timers.peek() {
                Some(Reverse((due, _, _))) => *due <= Instant::now(),
                None => false,
            };
            if !due_now {
                break;
            }
            let Reverse((_, id, kind)) = timers.pop().expect("peeked");
            if cancelled.remove(&id) {
                continue;
            }
            let mut c = ctx!();
            proto.on_timer(TimerId(id), kind, &mut c);
        }

        // With no timer armed there is nothing to poll for: block until
        // the next envelope (Stop also arrives on the channel).
        let timeout = timers
            .peek()
            .map(|Reverse((due, _, _))| due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_secs(3600));

        match inbox.recv_timeout(timeout) {
            Ok(Envelope::Net { from, msg }) => {
                let mut c = ctx!();
                proto.on_message(from, msg, &mut c);
            }
            Ok(Envelope::Invoke(f)) => {
                let mut c = ctx!();
                f(proto, &mut c);
            }
            Ok(Envelope::Stop) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
}

fn router_loop<P: Proto>(
    topo: Topology,
    scale: f64,
    txs: Vec<Sender<Envelope<P>>>,
    rx: Receiver<RouterCmd<P::Msg>>,
    stats: Arc<Mutex<NetStats>>,
    rng: &mut StdRng,
) {
    let mut heap: BinaryHeap<Reverse<InFlight<P::Msg>>> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        // Forward everything due.
        loop {
            let due_now = match heap.peek() {
                Some(Reverse(f)) => f.due <= Instant::now(),
                None => false,
            };
            if !due_now {
                break;
            }
            let Reverse(f) = heap.pop().expect("peeked");
            let _ = txs[f.to.index()].send(Envelope::Net { from: f.from, msg: f.msg });
        }

        // Nothing in flight: block until the next command.
        let timeout = heap
            .peek()
            .map(|Reverse(f)| f.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_secs(3600));

        match rx.recv_timeout(timeout) {
            Ok(RouterCmd::Send { from, to, msg }) => {
                stats.lock().record(msg.class(), msg.wire_size() as u64);
                let virt = if from == to {
                    SimDuration::from_micros(50)
                } else {
                    topo.sample_delay(from, to, rng)
                };
                let wall = Duration::from_secs_f64(virt.as_secs_f64() * scale);
                heap.push(Reverse(InFlight { due: Instant::now() + wall, seq, from, to, msg }));
                seq += 1;
            }
            Ok(RouterCmd::Stop) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
    // Flush anything still queued so late messages are not lost on stop.
    while let Some(Reverse(f)) = heap.pop() {
        let _ = txs[f.to.index()].send(Envelope::Net { from: f.from, msg: f.msg });
    }
}

// ====================================================================
// Sharded mode: per-node shard workers over a ShardedProto.
// ====================================================================

/// Boxed closure run on one shard worker (see [`ShardedEngine::invoke`]).
type ShardInvokeFn<P> =
    Box<dyn FnOnce(&mut <P as ShardedProto>::Shard, &mut dyn Context<<P as Proto>::Msg>) + Send>;

enum ShardEnvelope<P: ShardedProto> {
    Net { from: NodeId, msg: P::Msg },
    Invoke(ShardInvokeFn<P>),
    Stop,
}

/// Context handed to shard workers: identical to the per-node context
/// except that sends are routed to the shard-matching router.
struct ShardCtx<'a, M> {
    me: NodeId,
    n: usize,
    shards: usize,
    start: Instant,
    scale: f64,
    route: fn(&M, usize) -> usize,
    routers: &'a [Sender<RouterCmd<M>>],
    timers: &'a mut BinaryHeap<Reverse<(Instant, u64, u64)>>,
    cancelled: &'a mut HashSet<u64>,
    next_timer: &'a mut u64,
    rng: &'a mut StdRng,
}

impl<M> Context<M> for ShardCtx<'_, M> {
    fn now(&self) -> SimTime {
        let wall = self.start.elapsed().as_micros() as f64;
        SimTime((wall / self.scale) as u64)
    }
    fn me(&self) -> NodeId {
        self.me
    }
    fn node_count(&self) -> usize {
        self.n
    }
    fn send(&mut self, to: NodeId, msg: M) {
        let shard = (self.route)(&msg, self.shards);
        // A closed router means the engine is stopping; drop silently.
        let _ = self.routers[shard].send(RouterCmd::Send { from: self.me, to, msg });
    }
    fn set_timer(&mut self, delay: SimDuration, kind: u64) -> TimerId {
        let id = *self.next_timer;
        *self.next_timer += 1;
        let wall = Duration::from_secs_f64(delay.as_secs_f64() * self.scale);
        self.timers.push(Reverse((Instant::now() + wall, id, kind)));
        TimerId(id)
    }
    fn cancel_timer(&mut self, timer: TimerId) {
        self.cancelled.insert(timer.0);
    }
    fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }
}

/// The sharded threaded engine: `shards` workers per node, each owning one
/// [`ShardedProto::Shard`], mailboxes and delay-routers partitioned by the
/// protocol's object hash. See the module docs for the ordering guarantees.
pub struct ShardedEngine<P: ShardedProto + 'static> {
    /// Worker mailboxes, indexed `node * shards + shard`.
    worker_txs: Vec<Sender<ShardEnvelope<P>>>,
    router_txs: Vec<Sender<RouterCmd<P::Msg>>>,
    worker_handles: Vec<thread::JoinHandle<P::Shard>>,
    router_handles: Vec<thread::JoinHandle<()>>,
    shards: usize,
    stats: Arc<Mutex<NetStats>>,
    start: Instant,
    scale: f64,
}

impl<P: ShardedProto + 'static> ShardedEngine<P> {
    /// Starts `cfg.shards` workers per node plus one delay-router per
    /// shard, running `shard_on_start` on every worker.
    ///
    /// # Panics
    /// Panics when a node's [`ShardedProto::shard_count`] differs from
    /// `cfg.shards` (the store partition and the mailbox partition must be
    /// the same function, or per-object ordering breaks).
    pub fn start(topo: Topology, cfg: ThreadedConfig, nodes: Vec<P>) -> Self {
        assert_eq!(nodes.len(), topo.len(), "one protocol instance per topology node");
        assert!(cfg.time_scale > 0.0, "time_scale must be positive");
        let shards = cfg.shards.max(1);
        for node in &nodes {
            assert_eq!(
                node.shard_count(),
                shards,
                "node shard count must match ThreadedConfig::shards"
            );
        }
        let n = nodes.len();
        let stats = Arc::new(Mutex::new(NetStats::new()));
        let start = Instant::now();

        let mut router_txs = Vec::with_capacity(shards);
        let mut router_rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = unbounded::<RouterCmd<P::Msg>>();
            router_txs.push(tx);
            router_rxs.push(rx);
        }
        let mut worker_txs = Vec::with_capacity(n * shards);
        let mut worker_rxs = Vec::with_capacity(n * shards);
        for _ in 0..n * shards {
            let (tx, rx) = unbounded::<ShardEnvelope<P>>();
            worker_txs.push(tx);
            worker_rxs.push(rx);
        }

        // One delay-router per shard: shard s of every node talks through
        // router s, which delivers into the `node * shards + s` mailboxes.
        let mut router_handles = Vec::with_capacity(shards);
        for (s, rx) in router_rxs.into_iter().enumerate() {
            let topo = topo.clone();
            let txs: Vec<Sender<ShardEnvelope<P>>> = worker_txs.clone();
            let stats = Arc::clone(&stats);
            let scale = cfg.time_scale;
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0070_07e5 ^ ((s as u64) << 32));
            let handle = thread::Builder::new()
                .name(format!("idea-router-{s}"))
                .spawn(move || {
                    sharded_router_loop::<P>(topo, scale, shards, s, txs, rx, stats, &mut rng);
                })
                .expect("spawn router");
            router_handles.push(handle);
        }

        // Shard workers.
        let mut worker_handles = Vec::with_capacity(n * shards);
        for (i, node) in nodes.into_iter().enumerate() {
            let node_shards = node.into_shards();
            assert_eq!(node_shards.len(), shards, "into_shards must honour shard_count");
            for (s, mut shard) in node_shards.into_iter().enumerate() {
                let inbox = worker_rxs.remove(0);
                let routers = router_txs.clone();
                let scale = cfg.time_scale;
                let seed = cfg.seed.wrapping_add(1 + (i * shards + s) as u64);
                let handle = thread::Builder::new()
                    .name(format!("idea-node-{i}-s{s}"))
                    .spawn(move || {
                        shard_worker_loop::<P>(
                            NodeId(i as u32),
                            n,
                            shards,
                            start,
                            scale,
                            &mut shard,
                            inbox,
                            routers,
                            seed,
                        );
                        shard
                    })
                    .expect("spawn shard worker");
                worker_handles.push(handle);
            }
        }

        ShardedEngine {
            worker_txs,
            router_txs,
            worker_handles,
            router_handles,
            shards,
            stats,
            start,
            scale: cfg.time_scale,
        }
    }

    /// Current virtual time as observed by the engine.
    pub fn now(&self) -> SimTime {
        SimTime((self.start.elapsed().as_micros() as f64 / self.scale) as u64)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.worker_txs.len() / self.shards
    }

    /// True when the engine has no nodes.
    pub fn is_empty(&self) -> bool {
        self.worker_txs.is_empty()
    }

    /// Shard workers per node.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The worker index owning `object` — the same `ObjectId` hash the
    /// message mailboxes are partitioned by, exposed so command layers can
    /// route object-addressed work without re-deriving the partition.
    pub fn shard_for_object(&self, object: idea_types::ObjectId) -> usize {
        idea_types::ShardId::of(object, self.shards).index()
    }

    /// Fire-and-forget action on one shard worker of a node. The caller
    /// picks the shard owning the object it is about to touch (the same
    /// hash the mailbox uses, e.g. `ShardId::of`).
    pub fn invoke(
        &self,
        id: NodeId,
        shard: usize,
        f: impl FnOnce(&mut P::Shard, &mut dyn Context<P::Msg>) + Send + 'static,
    ) {
        let _ = self.try_invoke(id, shard, f);
    }

    /// Fallible fire-and-forget: `false` when the shard worker's mailbox is
    /// closed (the engine is stopping or stopped), so service frontends can
    /// surface a typed error instead of dropping the command silently.
    #[must_use]
    pub fn try_invoke(
        &self,
        id: NodeId,
        shard: usize,
        f: impl FnOnce(&mut P::Shard, &mut dyn Context<P::Msg>) + Send + 'static,
    ) -> bool {
        assert!(shard < self.shards, "shard index out of range");
        self.worker_txs[id.index() * self.shards + shard]
            .send(ShardEnvelope::Invoke(Box::new(f)))
            .is_ok()
    }

    /// Runs `f` on the shard worker and waits for its result.
    ///
    /// # Panics
    /// Panics when the worker is gone; use [`ShardedEngine::try_query`]
    /// where that must be an error instead.
    pub fn query<R: Send + 'static>(
        &self,
        id: NodeId,
        shard: usize,
        f: impl FnOnce(&mut P::Shard, &mut dyn Context<P::Msg>) -> R + Send + 'static,
    ) -> R {
        self.try_query(id, shard, f).expect("shard worker alive")
    }

    /// Like [`ShardedEngine::query`], but returns `None` instead of
    /// panicking when the shard worker is gone — either the mailbox is
    /// already closed, or the worker dies before replying.
    pub fn try_query<R: Send + 'static>(
        &self,
        id: NodeId,
        shard: usize,
        f: impl FnOnce(&mut P::Shard, &mut dyn Context<P::Msg>) -> R + Send + 'static,
    ) -> Option<R> {
        let (tx, rx) = bounded(1);
        if !self.try_invoke(id, shard, move |p, ctx| {
            let _ = tx.send(f(p, ctx));
        }) {
            return None;
        }
        rx.recv().ok()
    }

    /// Sleeps for `d` of *virtual* time (scaled to wall time).
    pub fn sleep_virtual(&self, d: SimDuration) {
        thread::sleep(Duration::from_secs_f64(d.as_secs_f64() * self.scale));
    }

    /// Snapshot of network statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.lock().snapshot()
    }

    /// Stops all workers and routers, reassembles each node from its shards
    /// and returns the final node states in id order.
    ///
    /// Routers are stopped and joined **before** the workers are told to
    /// stop, for the same reason as [`ThreadedEngine::stop`]: the router
    /// shutdown flushes its delay heap into the worker mailboxes, and the
    /// flush must precede each worker's `Stop` envelope (FIFO) to be
    /// processed rather than silently dropped.
    pub fn stop(mut self) -> Vec<P> {
        for tx in &self.router_txs {
            let _ = tx.send(RouterCmd::Stop);
        }
        for h in self.router_handles.drain(..) {
            let _ = h.join();
        }
        for tx in &self.worker_txs {
            let _ = tx.send(ShardEnvelope::Stop);
        }
        let mut shards: Vec<P::Shard> = self
            .worker_handles
            .drain(..)
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
        let mut nodes = Vec::with_capacity(shards.len() / self.shards);
        while !shards.is_empty() {
            let rest = shards.split_off(self.shards.min(shards.len()));
            nodes.push(P::from_shards(std::mem::replace(&mut shards, rest)));
        }
        nodes
    }
}

#[allow(clippy::too_many_arguments)]
fn shard_worker_loop<P: ShardedProto>(
    me: NodeId,
    n: usize,
    shards: usize,
    start: Instant,
    scale: f64,
    shard: &mut P::Shard,
    inbox: Receiver<ShardEnvelope<P>>,
    routers: Vec<Sender<RouterCmd<P::Msg>>>,
    seed: u64,
) {
    let mut timers: BinaryHeap<Reverse<(Instant, u64, u64)>> = BinaryHeap::new();
    let mut cancelled: HashSet<u64> = HashSet::new();
    let mut next_timer: u64 = 0;
    let mut rng = StdRng::seed_from_u64(seed);

    macro_rules! ctx {
        () => {
            ShardCtx {
                me,
                n,
                shards,
                start,
                scale,
                route: P::shard_of,
                routers: &routers,
                timers: &mut timers,
                cancelled: &mut cancelled,
                next_timer: &mut next_timer,
                rng: &mut rng,
            }
        };
    }

    {
        let mut c = ctx!();
        P::shard_on_start(shard, &mut c);
    }

    loop {
        // Fire due timers first.
        loop {
            let due_now = match timers.peek() {
                Some(Reverse((due, _, _))) => *due <= Instant::now(),
                None => false,
            };
            if !due_now {
                break;
            }
            let Reverse((_, id, kind)) = timers.pop().expect("peeked");
            if cancelled.remove(&id) {
                continue;
            }
            let mut c = ctx!();
            P::shard_on_timer(shard, TimerId(id), kind, &mut c);
        }

        // Idle shard workers must not wake the scheduler: with no timer
        // armed, block until the next envelope (Stop arrives on the
        // channel too). With hundreds of workers per machine a 25 ms idle
        // poll was a measurable scheduling storm.
        let timeout = timers
            .peek()
            .map(|Reverse((due, _, _))| due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_secs(3600));

        match inbox.recv_timeout(timeout) {
            Ok(ShardEnvelope::Net { from, msg }) => {
                let mut c = ctx!();
                P::shard_on_message(shard, from, msg, &mut c);
            }
            Ok(ShardEnvelope::Invoke(f)) => {
                let mut c = ctx!();
                f(shard, &mut c);
            }
            Ok(ShardEnvelope::Stop) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn sharded_router_loop<P: ShardedProto>(
    topo: Topology,
    scale: f64,
    shards: usize,
    my_shard: usize,
    txs: Vec<Sender<ShardEnvelope<P>>>,
    rx: Receiver<RouterCmd<P::Msg>>,
    stats: Arc<Mutex<NetStats>>,
    rng: &mut StdRng,
) {
    let deliver = |f: InFlight<P::Msg>| {
        let _ = txs[f.to.index() * shards + my_shard]
            .send(ShardEnvelope::Net { from: f.from, msg: f.msg });
    };
    let mut heap: BinaryHeap<Reverse<InFlight<P::Msg>>> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        // Forward everything due.
        loop {
            let due_now = match heap.peek() {
                Some(Reverse(f)) => f.due <= Instant::now(),
                None => false,
            };
            if !due_now {
                break;
            }
            let Reverse(f) = heap.pop().expect("peeked");
            deliver(f);
        }

        // Nothing in flight: block until the next command.
        let timeout = heap
            .peek()
            .map(|Reverse(f)| f.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_secs(3600));

        match rx.recv_timeout(timeout) {
            Ok(RouterCmd::Send { from, to, msg }) => {
                stats.lock().record(msg.class(), msg.wire_size() as u64);
                let virt = if from == to {
                    SimDuration::from_micros(50)
                } else {
                    topo.sample_delay(from, to, rng)
                };
                let wall = Duration::from_secs_f64(virt.as_secs_f64() * scale);
                heap.push(Reverse(InFlight { due: Instant::now() + wall, seq, from, to, msg }));
                seq += 1;
            }
            Ok(RouterCmd::Stop) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
    // Flush anything still queued so late messages are not lost on stop.
    while let Some(Reverse(f)) = heap.pop() {
        deliver(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MsgClass;

    #[derive(Debug, Clone)]
    struct Token {
        hops: u32,
    }

    impl Wire for Token {
        fn class(&self) -> MsgClass {
            MsgClass::App
        }
    }

    struct Ring {
        received: u32,
        laps: u32,
    }

    impl Proto for Ring {
        type Msg = Token;
        fn on_message(&mut self, _from: NodeId, msg: Token, ctx: &mut dyn Context<Token>) {
            self.received += 1;
            if msg.hops < self.laps * ctx.node_count() as u32 {
                let next = NodeId((ctx.me().0 + 1) % ctx.node_count() as u32);
                ctx.send(next, Token { hops: msg.hops + 1 });
            }
        }
    }

    #[test]
    fn token_ring_runs_on_threads() {
        let n = 4;
        let nodes: Vec<Ring> = (0..n).map(|_| Ring { received: 0, laps: 3 }).collect();
        let eng = ThreadedEngine::start(
            Topology::lan(n),
            ThreadedConfig { seed: 1, time_scale: 1.0, ..Default::default() },
            nodes,
        );
        eng.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(1), Token { hops: 1 }));
        // 12 hops at 0.5 ms each — give it ample wall time.
        thread::sleep(Duration::from_millis(400));
        let received = eng.query(NodeId(1), |p, _| p.received);
        assert!(received >= 1);
        let states = eng.stop();
        let total: u32 = states.iter().map(|p| p.received).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn stats_are_shared_and_counted() {
        let nodes: Vec<Ring> = (0..2).map(|_| Ring { received: 0, laps: 1 }).collect();
        let eng = ThreadedEngine::start(
            Topology::lan(2),
            ThreadedConfig { seed: 2, time_scale: 1.0, ..Default::default() },
            nodes,
        );
        eng.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(1), Token { hops: 1 }));
        thread::sleep(Duration::from_millis(200));
        let snap = eng.stats();
        let app = snap
            .per_class
            .iter()
            .find(|(c, _, _)| *c == MsgClass::App)
            .map(|(_, m, _)| *m)
            .unwrap_or(0);
        assert_eq!(app, 2); // initial send + one forward
        eng.stop();
    }

    struct Alarm {
        fired: Vec<u64>,
    }

    impl Proto for Alarm {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
            ctx.set_timer(SimDuration::from_millis(5), 7);
            let t = ctx.set_timer(SimDuration::from_millis(10), 8);
            ctx.cancel_timer(t);
        }
        fn on_message(&mut self, _f: NodeId, _m: Token, _c: &mut dyn Context<Token>) {}
        fn on_timer(&mut self, _t: TimerId, kind: u64, _c: &mut dyn Context<Token>) {
            self.fired.push(kind);
        }
    }

    #[test]
    fn timers_fire_and_cancel_on_threads() {
        let eng = ThreadedEngine::start(
            Topology::lan(1),
            ThreadedConfig { seed: 3, time_scale: 1.0, ..Default::default() },
            vec![Alarm { fired: vec![] }],
        );
        thread::sleep(Duration::from_millis(120));
        let states = eng.stop();
        assert_eq!(states[0].fired, vec![7]);
    }

    #[test]
    fn virtual_time_respects_scale() {
        let eng = ThreadedEngine::start(
            Topology::lan(1),
            ThreadedConfig { seed: 4, time_scale: 0.01, ..Default::default() },
            vec![Alarm { fired: vec![] }],
        );
        thread::sleep(Duration::from_millis(50));
        // 50 ms of wall time at scale 0.01 is ~5 s of virtual time.
        let now = eng.now();
        assert!(now >= SimTime::from_secs(4), "virtual now {now}");
        eng.stop();
    }

    #[test]
    fn stop_delivers_messages_still_in_the_delay_heap() {
        use crate::latency::{Jitter, LatencyModel};
        // 200 ms constant delay: the token is guaranteed to still sit in
        // the router's delay heap when stop() runs right after the send.
        // The router's shutdown flush must land in a mailbox the node will
        // still drain (regression: nodes used to be stopped first, so the
        // flushed message arrived behind Stop and was never processed).
        let topo = Topology::custom(
            2,
            LatencyModel::Constant(SimDuration::from_millis(200)),
            Jitter::None,
        );
        let nodes: Vec<Ring> = (0..2).map(|_| Ring { received: 0, laps: 0 }).collect();
        let eng =
            ThreadedEngine::start(topo, ThreadedConfig { seed: 5, ..Default::default() }, nodes);
        // query (not invoke) so the send has reached the router before
        // stop() enqueues RouterCmd::Stop behind it.
        eng.query(NodeId(0), |_, ctx| ctx.send(NodeId(1), Token { hops: 99 }));
        let states = eng.stop();
        assert_eq!(states[1].received, 1, "in-flight message dropped on stop");
    }

    /// Single-shard sharded wrapper over [`Ring`], for the sharded-engine
    /// twin of the shutdown-flush regression test.
    struct ShardedRing {
        shards: Vec<Ring>,
    }

    impl Proto for ShardedRing {
        type Msg = Token;
        fn on_message(&mut self, from: NodeId, msg: Token, ctx: &mut dyn Context<Token>) {
            self.shards[0].on_message(from, msg, ctx);
        }
    }

    impl ShardedProto for ShardedRing {
        type Shard = Ring;
        fn shard_count(&self) -> usize {
            self.shards.len()
        }
        fn shard_of(_msg: &Token, _shards: usize) -> usize {
            0
        }
        fn into_shards(self) -> Vec<Ring> {
            self.shards
        }
        fn from_shards(shards: Vec<Ring>) -> Self {
            ShardedRing { shards }
        }
        fn shard_on_start(_shard: &mut Ring, _ctx: &mut dyn Context<Token>) {}
        fn shard_on_message(
            shard: &mut Ring,
            from: NodeId,
            msg: Token,
            ctx: &mut dyn Context<Token>,
        ) {
            shard.on_message(from, msg, ctx);
        }
        fn shard_on_timer(_s: &mut Ring, _t: TimerId, _k: u64, _c: &mut dyn Context<Token>) {}
    }

    #[test]
    fn sharded_stop_delivers_messages_still_in_the_delay_heap() {
        use crate::latency::{Jitter, LatencyModel};
        let topo = Topology::custom(
            2,
            LatencyModel::Constant(SimDuration::from_millis(200)),
            Jitter::None,
        );
        let nodes: Vec<ShardedRing> =
            (0..2).map(|_| ShardedRing { shards: vec![Ring { received: 0, laps: 0 }] }).collect();
        let eng =
            ShardedEngine::start(topo, ThreadedConfig { seed: 6, ..Default::default() }, nodes);
        eng.query(NodeId(0), 0, |_, ctx| ctx.send(NodeId(1), Token { hops: 99 }));
        let states = eng.stop();
        assert_eq!(states[1].shards[0].received, 1, "in-flight message dropped on stop");
    }

    #[test]
    fn query_round_trips() {
        let eng = ThreadedEngine::start(
            Topology::lan(2),
            ThreadedConfig::default(),
            vec![Ring { received: 0, laps: 1 }, Ring { received: 0, laps: 1 }],
        );
        let me = eng.query(NodeId(1), |_, ctx| ctx.me());
        assert_eq!(me, NodeId(1));
        assert_eq!(eng.len(), 2);
        eng.stop();
    }
}
