//! One node's replica of one shared object.

use idea_types::{IdeaError, ObjectId, Result, SimTime, Update, UpdateId, WriterId};
use idea_vv::ExtendedVersionVector;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of offering an update to a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The update extended the log.
    Applied,
    /// The update was buffered: an earlier update of the same writer is
    /// still missing (network reordering).
    Buffered,
    /// The update was already present (duplicate delivery).
    Duplicate,
}

/// A restorable point in a replica's history (rollback support, §4.4.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Log length at checkpoint time.
    log_len: usize,
    /// Virtual time the checkpoint was taken.
    pub at: SimTime,
}

impl Checkpoint {
    /// The retained log length (the WAL logs rollbacks as a truncation to
    /// this many entries).
    pub(crate) fn log_len(&self) -> usize {
        self.log_len
    }
}

/// A replica: the applied update log plus its extended version vector.
#[derive(Debug, Clone)]
pub struct Replica {
    object: ObjectId,
    log: Vec<Update>,
    evv: ExtendedVersionVector,
    /// Out-of-order arrivals waiting for their per-writer predecessor,
    /// keyed by (writer, seq).
    pending: BTreeMap<(WriterId, u64), Update>,
    /// Rolling content digest: XOR of [`idea_wal::hash::update_hash`] over
    /// the applied log. Order-independent (two replicas holding the same
    /// update *set* hash identically regardless of delivery interleaving),
    /// maintained incrementally on apply and recomputed in the same O(n)
    /// passes reconcile/drop/rollback already make.
    hash: u64,
}

impl Replica {
    /// An empty replica of `object`.
    pub fn new(object: ObjectId) -> Self {
        Replica {
            object,
            log: Vec::new(),
            evv: ExtendedVersionVector::new(),
            pending: BTreeMap::new(),
            hash: 0,
        }
    }

    /// The object this replica holds.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// The applied update log, in application order.
    pub fn log(&self) -> &[Update] {
        &self.log
    }

    /// Number of applied updates.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True when no update has been applied.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// The extended version vector describing this replica.
    pub fn version(&self) -> &ExtendedVersionVector {
        &self.evv
    }

    /// Current critical-metadata value.
    pub fn meta(&self) -> i64 {
        self.evv.meta()
    }

    /// Number of updates buffered waiting for predecessors.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The buffered out-of-order arrivals, in (writer, seq) order — the
    /// durability plane snapshots them alongside the applied log so a
    /// recovered replica buffers exactly what the crashed one did.
    pub fn pending_updates(&self) -> impl Iterator<Item = &Update> + '_ {
        self.pending.values()
    }

    /// The rolling content digest of the applied log (see the field docs):
    /// equal hashes ⇔ equal applied update sets, w.h.p. One `u64` pins
    /// recovery and rejoin equivalence.
    pub fn state_hash(&self) -> u64 {
        self.hash
    }

    /// True when the update has been applied (not merely buffered).
    pub fn has(&self, id: UpdateId) -> bool {
        self.evv.count(id.writer) >= id.seq
    }

    /// Offers an update. Out-of-order updates (per writer) are buffered and
    /// drained automatically once the gap closes.
    ///
    /// # Errors
    /// Rejects updates for a different object.
    pub fn apply(&mut self, update: Update) -> Result<ApplyOutcome> {
        if update.object != self.object {
            return Err(IdeaError::UnknownObject(update.object));
        }
        let have = self.evv.count(update.writer());
        if update.seq() <= have {
            return Ok(ApplyOutcome::Duplicate);
        }
        if update.seq() > have + 1 {
            self.pending.insert((update.writer(), update.seq()), update);
            return Ok(ApplyOutcome::Buffered);
        }
        self.apply_in_order(update);
        self.drain_pending();
        Ok(ApplyOutcome::Applied)
    }

    fn apply_in_order(&mut self, update: Update) {
        self.evv.record(update.writer(), update.seq(), update.at, update.meta_delta);
        self.hash ^= idea_wal::hash::update_hash(&update);
        self.log.push(update);
    }

    fn drain_pending(&mut self) {
        loop {
            let mut next: Option<(WriterId, u64)> = None;
            for &(w, s) in self.pending.keys() {
                if self.evv.count(w) + 1 == s {
                    next = Some((w, s));
                    break;
                }
            }
            match next {
                Some(key) => {
                    let u = self.pending.remove(&key).expect("key just found");
                    self.apply_in_order(u);
                }
                None => break,
            }
        }
    }

    /// Updates this replica holds that `peer` (described by its vector) is
    /// missing — the transfer batch resolution ships (§4.5.2: members
    /// "update their copies by acquiring any missing updates").
    pub fn updates_missing_at(&self, peer: &ExtendedVersionVector) -> Vec<Update> {
        self.log.iter().filter(|u| peer.count(u.writer()) < u.seq()).cloned().collect()
    }

    /// Replaces this replica's content with the reference state: applied
    /// log and vector become exactly the reference's. Extra local updates
    /// (not sanctioned by the reference) are returned so the caller can
    /// surface them to the application (e.g. re-issue or discard).
    pub fn reconcile_to(&mut self, reference_log: &[Update]) -> Vec<Update> {
        let mut evv = ExtendedVersionVector::new();
        let mut hash = 0u64;
        for u in reference_log {
            evv.record(u.writer(), u.seq(), u.at, u.meta_delta);
            hash ^= idea_wal::hash::update_hash(u);
        }
        let extras = self.log.iter().filter(|u| evv.count(u.writer()) < u.seq()).cloned().collect();
        self.log = reference_log.to_vec();
        self.evv = evv;
        self.hash = hash;
        self.pending.clear();
        extras
    }

    /// Updates this replica holds beyond the per-writer `counts` — the
    /// transfer batch for a peer that advertised bare counters.
    pub fn updates_beyond(&self, counts: &idea_vv::VersionVector) -> Vec<Update> {
        self.log.iter().filter(|u| u.seq() > counts.get(u.writer())).cloned().collect()
    }

    /// Drops every applied update beyond the per-writer `counts` — the
    /// "loser invalidation" step of resolution: after a reference state is
    /// chosen, updates the reference never sanctioned are rolled back
    /// (§4.5.1, *invalidate both* and the losing side of *user-ID based*).
    /// Returns the invalidated updates.
    pub fn drop_extras(&mut self, counts: &idea_vv::VersionVector) -> Vec<Update> {
        let (keep, dropped): (Vec<Update>, Vec<Update>) =
            self.log.drain(..).partition(|u| u.seq() <= counts.get(u.writer()));
        let mut evv = ExtendedVersionVector::new();
        let mut hash = 0u64;
        for u in &keep {
            evv.record(u.writer(), u.seq(), u.at, u.meta_delta);
            hash ^= idea_wal::hash::update_hash(u);
        }
        self.log = keep;
        self.evv = evv;
        self.hash = hash;
        self.pending.clear();
        dropped
    }

    /// Takes a checkpoint that [`Replica::rollback`] can later restore.
    pub fn checkpoint(&self, at: SimTime) -> Checkpoint {
        Checkpoint { log_len: self.log.len(), at }
    }

    /// Rolls back to `cp`, discarding every update applied after it and
    /// returning the discarded suffix (newest last).
    ///
    /// # Errors
    /// Fails if the checkpoint is ahead of the current log (it belongs to a
    /// different replica or the log was already reconciled shorter).
    pub fn rollback(&mut self, cp: &Checkpoint) -> Result<Vec<Update>> {
        if cp.log_len > self.log.len() {
            return Err(IdeaError::RollbackBeyondLog);
        }
        let dropped: Vec<Update> = self.log.split_off(cp.log_len);
        let mut evv = ExtendedVersionVector::new();
        let mut hash = 0u64;
        for u in &self.log {
            evv.record(u.writer(), u.seq(), u.at, u.meta_delta);
            hash ^= idea_wal::hash::update_hash(u);
        }
        self.evv = evv;
        self.hash = hash;
        self.pending.clear();
        Ok(dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_types::UpdatePayload;
    use proptest::prelude::*;

    const OBJ: ObjectId = ObjectId(7);

    fn upd(writer: u32, seq: u64, at_s: u64, delta: i64) -> Update {
        Update {
            object: OBJ,
            id: UpdateId { writer: WriterId(writer), seq },
            at: SimTime::from_secs(at_s),
            meta_delta: delta,
            payload: UpdatePayload::Opaque(bytes::Bytes::new()),
        }
    }

    #[test]
    fn in_order_apply_extends_log() {
        let mut r = Replica::new(OBJ);
        assert_eq!(r.apply(upd(0, 1, 1, 5)).unwrap(), ApplyOutcome::Applied);
        assert_eq!(r.apply(upd(0, 2, 2, 3)).unwrap(), ApplyOutcome::Applied);
        assert_eq!(r.len(), 2);
        assert_eq!(r.meta(), 8);
        assert!(r.has(UpdateId { writer: WriterId(0), seq: 2 }));
        assert!(!r.has(UpdateId { writer: WriterId(0), seq: 3 }));
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut r = Replica::new(OBJ);
        r.apply(upd(0, 1, 1, 5)).unwrap();
        assert_eq!(r.apply(upd(0, 1, 1, 5)).unwrap(), ApplyOutcome::Duplicate);
        assert_eq!(r.len(), 1);
        assert_eq!(r.meta(), 5);
    }

    #[test]
    fn out_of_order_buffers_then_drains() {
        let mut r = Replica::new(OBJ);
        assert_eq!(r.apply(upd(0, 3, 3, 1)).unwrap(), ApplyOutcome::Buffered);
        assert_eq!(r.apply(upd(0, 2, 2, 1)).unwrap(), ApplyOutcome::Buffered);
        assert_eq!(r.len(), 0);
        assert_eq!(r.pending_len(), 2);
        assert_eq!(r.apply(upd(0, 1, 1, 1)).unwrap(), ApplyOutcome::Applied);
        assert_eq!(r.len(), 3, "gap closed, buffer drained");
        assert_eq!(r.pending_len(), 0);
        assert_eq!(r.version().count(WriterId(0)), 3);
    }

    #[test]
    fn wrong_object_is_rejected() {
        let mut r = Replica::new(OBJ);
        let mut u = upd(0, 1, 1, 1);
        u.object = ObjectId(99);
        assert!(matches!(r.apply(u), Err(IdeaError::UnknownObject(_))));
    }

    #[test]
    fn transfer_batch_is_exact_gap() {
        let mut a = Replica::new(OBJ);
        let mut b = Replica::new(OBJ);
        for s in 1..=4 {
            a.apply(upd(0, s, s, 1)).unwrap();
        }
        b.apply(upd(0, 1, 1, 1)).unwrap();
        b.apply(upd(1, 1, 2, 1)).unwrap();
        let batch = a.updates_missing_at(b.version());
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|u| u.writer() == WriterId(0) && u.seq() >= 2));
        // Applying the batch converges a's updates into b.
        for u in batch {
            b.apply(u).unwrap();
        }
        assert_eq!(b.version().count(WriterId(0)), 4);
    }

    #[test]
    fn reconcile_adopts_reference_and_reports_extras() {
        let mut reference = Replica::new(OBJ);
        reference.apply(upd(0, 1, 1, 1)).unwrap();
        reference.apply(upd(1, 1, 2, 2)).unwrap();

        let mut r = Replica::new(OBJ);
        r.apply(upd(0, 1, 1, 1)).unwrap();
        r.apply(upd(2, 1, 3, 7)).unwrap(); // the extra the reference lacks

        let extras = r.reconcile_to(reference.log());
        assert_eq!(extras.len(), 1);
        assert_eq!(extras[0].writer(), WriterId(2));
        assert_eq!(r.log(), reference.log());
        assert_eq!(r.meta(), reference.meta());
        assert!(r.version().triple_against(reference.version()).is_zero());
    }

    #[test]
    fn drop_extras_truncates_to_sanctioned_counts() {
        let mut r = Replica::new(OBJ);
        r.apply(upd(0, 1, 1, 1)).unwrap();
        r.apply(upd(0, 2, 2, 2)).unwrap();
        r.apply(upd(1, 1, 3, 4)).unwrap();
        // Reference sanctions only w0:1 — w0's second update and all of w1
        // are invalidated.
        let counts = idea_vv::VersionVector::from_pairs([(WriterId(0), 1)]);
        let dropped = r.drop_extras(&counts);
        assert_eq!(dropped.len(), 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.meta(), 1);
        assert_eq!(r.version().count(WriterId(0)), 1);
        assert_eq!(r.version().count(WriterId(1)), 0);
        // Idempotent once truncated.
        assert!(r.drop_extras(&counts).is_empty());
    }

    #[test]
    fn rollback_restores_prefix() {
        let mut r = Replica::new(OBJ);
        r.apply(upd(0, 1, 1, 1)).unwrap();
        r.apply(upd(0, 2, 2, 10)).unwrap();
        let cp = r.checkpoint(SimTime::from_secs(2));
        r.apply(upd(1, 1, 3, 100)).unwrap();
        r.apply(upd(0, 3, 4, 1000)).unwrap();
        assert_eq!(r.meta(), 1111);

        let dropped = r.rollback(&cp).unwrap();
        assert_eq!(dropped.len(), 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.meta(), 11);
        assert_eq!(r.version().count(WriterId(1)), 0);
    }

    #[test]
    fn rollback_beyond_log_fails() {
        let mut r = Replica::new(OBJ);
        r.apply(upd(0, 1, 1, 1)).unwrap();
        let cp = r.checkpoint(SimTime::from_secs(1));
        let reference = Replica::new(OBJ);
        r.reconcile_to(reference.log()); // log now shorter than checkpoint
        assert_eq!(r.rollback(&cp), Err(IdeaError::RollbackBeyondLog));
    }

    #[test]
    fn checkpoint_then_noop_rollback_is_identity() {
        let mut r = Replica::new(OBJ);
        r.apply(upd(0, 1, 1, 4)).unwrap();
        let cp = r.checkpoint(SimTime::from_secs(1));
        let before_log = r.log().to_vec();
        let dropped = r.rollback(&cp).unwrap();
        assert!(dropped.is_empty());
        assert_eq!(r.log(), &before_log[..]);
    }

    /// Random per-writer streams delivered in arbitrary interleavings.
    fn arb_streams() -> impl Strategy<Value = Vec<Update>> {
        prop::collection::vec((0u32..4, 1u64..60, -4i64..5), 1..40).prop_map(|raw| {
            let mut next_seq = [1u64; 4];
            let mut out = Vec::new();
            for (w, at, delta) in raw {
                let seq = next_seq[w as usize];
                next_seq[w as usize] += 1;
                out.push(upd(w, seq, at, delta));
            }
            out
        })
    }

    proptest! {
        #[test]
        fn any_delivery_order_converges(updates in arb_streams(), seed in 0u64..32) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

            let mut in_order = Replica::new(OBJ);
            for u in &updates {
                in_order.apply(u.clone()).unwrap();
            }

            let mut shuffled = updates.clone();
            shuffled.shuffle(&mut rng);
            let mut reordered = Replica::new(OBJ);
            for u in shuffled {
                reordered.apply(u).unwrap();
            }

            prop_assert_eq!(reordered.pending_len(), 0);
            prop_assert_eq!(reordered.meta(), in_order.meta());
            prop_assert!(reordered
                .version()
                .triple_against(in_order.version())
                .is_zero());
            // The rolling digest is delivery-order independent: same update
            // set, same hash.
            prop_assert_eq!(reordered.state_hash(), in_order.state_hash());
        }

        #[test]
        fn anti_entropy_exchange_converges(updates in arb_streams(), split in 0usize..40) {
            // Partition the stream between two replicas, then exchange
            // missing batches both ways: they must end identical.
            let cut = split.min(updates.len());
            let mut a = Replica::new(OBJ);
            let mut b = Replica::new(OBJ);
            for u in &updates[..cut] {
                a.apply(u.clone()).unwrap();
            }
            for u in &updates[cut..] {
                b.apply(u.clone()).unwrap();
            }
            for u in a.updates_missing_at(b.version()) {
                b.apply(u).unwrap();
            }
            for u in b.updates_missing_at(a.version()) {
                a.apply(u).unwrap();
            }
            prop_assert_eq!(a.pending_len(), 0);
            prop_assert_eq!(b.pending_len(), 0);
            prop_assert!(a.version().triple_against(b.version()).is_zero());
            prop_assert_eq!(a.meta(), b.meta());
        }

        #[test]
        fn rollback_is_exact_inverse(updates in arb_streams(), cut in 0usize..40) {
            let mut r = Replica::new(OBJ);
            let cut = cut.min(updates.len());
            for u in &updates[..cut] {
                r.apply(u.clone()).unwrap();
            }
            let snapshot_log = r.log().to_vec();
            let snapshot_meta = r.meta();
            let cp = r.checkpoint(SimTime::from_secs(999));
            for u in &updates[cut..] {
                r.apply(u.clone()).unwrap();
            }
            let hash_at_cp = {
                let mut fresh = Replica::new(OBJ);
                for u in &snapshot_log {
                    fresh.apply(u.clone()).unwrap();
                }
                fresh.state_hash()
            };
            r.rollback(&cp).unwrap();
            prop_assert_eq!(r.log(), &snapshot_log[..]);
            prop_assert_eq!(r.meta(), snapshot_meta);
            // Rollback's hash recomputation lands exactly on the prefix's
            // incrementally-maintained digest.
            prop_assert_eq!(r.state_hash(), hash_at_cp);
        }
    }
}
