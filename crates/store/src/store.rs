//! One node's store: every replica it hosts, partitioned into shards.
//!
//! [`ShardedStore`] routes each per-object operation to the
//! [`StoreShard`] owning that object (`ShardId::of(object, S)`), so
//! disjoint objects never contend on shared structure. With `S = 1` it
//! behaves exactly like the historical single-map store; [`NodeStore`] is
//! that configuration's name, kept for the callers (baselines, tests) that
//! never shard.

use crate::replica::{ApplyOutcome, Replica};
use crate::shard::{Snapshot, SnapshotView, StoreShard};
use idea_types::{NodeId, ObjectId, Result, ShardId, SimTime, Update, UpdatePayload, WriterId};

/// The unsharded (single-shard) store configuration.
///
/// Identical API and behaviour to the pre-sharding `NodeStore`; use
/// [`ShardedStore::with_shards`] to partition.
pub type NodeStore = ShardedStore;

/// All replicas hosted by one node, partitioned by `ObjectId` hash.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    shards: Vec<StoreShard>,
}

impl ShardedStore {
    /// A single-shard store for `node`, writing as `writer` (the historical
    /// `NodeStore` behaviour).
    pub fn new(node: NodeId, writer: WriterId) -> Self {
        Self::with_shards(node, writer, 1)
    }

    /// A store partitioned into `shards` independent shards.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn with_shards(node: NodeId, writer: WriterId, shards: usize) -> Self {
        assert!(shards > 0, "store needs at least one shard");
        ShardedStore { shards: (0..shards).map(|_| StoreShard::new(node, writer)).collect() }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.shards[0].node()
    }

    /// The local writer identity.
    pub fn writer(&self) -> WriterId {
        self.shards[0].writer()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `object`.
    pub fn shard_of(&self, object: ObjectId) -> ShardId {
        ShardId::of(object, self.shards.len())
    }

    /// Immutable access to shard `s`.
    pub fn shard(&self, s: ShardId) -> &StoreShard {
        &self.shards[s.index()]
    }

    /// Mutable access to shard `s`.
    pub fn shard_mut(&mut self, s: ShardId) -> &mut StoreShard {
        &mut self.shards[s.index()]
    }

    /// Iterates the shards in index order.
    pub fn shards(&self) -> impl Iterator<Item = &StoreShard> + '_ {
        self.shards.iter()
    }

    /// Decomposes the store into its shards (for per-shard ownership by
    /// runtime workers); [`ShardedStore::from_shards`] reassembles.
    pub fn into_shards(self) -> Vec<StoreShard> {
        self.shards
    }

    /// Reassembles a store from shards produced by
    /// [`ShardedStore::into_shards`] (in the same index order).
    ///
    /// # Panics
    /// Panics if `shards` is empty.
    pub fn from_shards(shards: Vec<StoreShard>) -> Self {
        assert!(!shards.is_empty(), "store needs at least one shard");
        ShardedStore { shards }
    }

    #[inline]
    fn owning(&self, object: ObjectId) -> &StoreShard {
        &self.shards[ShardId::of(object, self.shards.len()).index()]
    }

    #[inline]
    fn owning_mut(&mut self, object: ObjectId) -> &mut StoreShard {
        let s = ShardId::of(object, self.shards.len()).index();
        &mut self.shards[s]
    }

    /// Creates (or returns) the replica of `object`.
    pub fn open(&mut self, object: ObjectId) -> &mut Replica {
        self.owning_mut(object).open(object)
    }

    /// Immutable access to a replica.
    pub fn replica(&self, object: ObjectId) -> Result<&Replica> {
        self.owning(object).replica(object)
    }

    /// Mutable access to a replica.
    pub fn replica_mut(&mut self, object: ObjectId) -> Result<&mut Replica> {
        self.owning_mut(object).replica_mut(object)
    }

    /// Objects hosted by this node, in id order.
    ///
    /// With several shards the ids are gathered and sorted (an allocation);
    /// shard-local iteration ([`StoreShard::objects`]) stays allocation-free
    /// and is what the per-shard protocol paths use.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        let mut ids: Vec<ObjectId> = self.shards.iter().flat_map(|s| s.objects()).collect();
        ids.sort_unstable();
        ids.into_iter()
    }

    /// Issues a local write: assigns the next sequence number, applies it to
    /// the local replica and returns the update for dissemination.
    pub fn write(
        &mut self,
        object: ObjectId,
        at: SimTime,
        meta_delta: i64,
        payload: UpdatePayload,
    ) -> Update {
        self.owning_mut(object).write(object, at, meta_delta, payload)
    }

    /// Applies a remote update to the local replica.
    ///
    /// # Errors
    /// Fails when no replica of the object exists (`open` it first).
    pub fn ingest(&mut self, update: Update) -> Result<ApplyOutcome> {
        self.owning_mut(update.object).ingest(update)
    }

    /// Reads the current snapshot of `object` (owned; clones the version).
    ///
    /// # Errors
    /// Fails when no replica of the object exists.
    pub fn read(&self, object: ObjectId) -> Result<Snapshot> {
        self.owning(object).read(object)
    }

    /// Reads the current snapshot of `object` without cloning the version.
    ///
    /// # Errors
    /// Fails when no replica of the object exists.
    pub fn read_view(&self, object: ObjectId) -> Result<SnapshotView<'_>> {
        self.owning(object).read_view(object)
    }

    /// Resets the local write sequence to continue after `seq` (used after a
    /// reconciliation re-sequenced this writer's extra updates).
    pub fn resume_writes_after(&mut self, object: ObjectId, seq: u64) {
        self.owning_mut(object).resume_writes_after(object, seq);
    }

    /// Reconciles `object`'s replica to the sanctioned reference log
    /// (WAL-logged when durability is on). See [`StoreShard::reconcile_to`].
    ///
    /// # Errors
    /// Fails when no replica of the object exists.
    pub fn reconcile_to(
        &mut self,
        object: ObjectId,
        reference_log: &[Update],
    ) -> Result<Vec<Update>> {
        self.owning_mut(object).reconcile_to(object, reference_log)
    }

    /// Drops updates beyond the sanctioned `counts` (WAL-logged when
    /// durability is on). See [`StoreShard::drop_extras`].
    ///
    /// # Errors
    /// Fails when no replica of the object exists.
    pub fn drop_extras(
        &mut self,
        object: ObjectId,
        counts: &idea_vv::VersionVector,
    ) -> Result<Vec<Update>> {
        self.owning_mut(object).drop_extras(object, counts)
    }

    /// The rolling content digest of every hosted replica, XOR-folded so
    /// the value is independent of shard count and delivery interleaving.
    /// Two converged nodes hosting the same objects report the same digest.
    pub fn state_hash(&self) -> u64 {
        self.shards.iter().fold(0, |acc, s| acc ^ s.state_hash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use idea_types::{IdeaError, SimTime};

    fn store(node: u32) -> NodeStore {
        NodeStore::new(NodeId(node), WriterId(node))
    }

    fn payload() -> UpdatePayload {
        UpdatePayload::Opaque(Bytes::new())
    }

    #[test]
    fn writes_assign_consecutive_seqs() {
        let mut s = store(0);
        s.open(ObjectId(1));
        let u1 = s.write(ObjectId(1), SimTime::from_secs(1), 5, payload());
        let u2 = s.write(ObjectId(1), SimTime::from_secs(2), 5, payload());
        assert_eq!(u1.seq(), 1);
        assert_eq!(u2.seq(), 2);
        assert_eq!(u1.writer(), WriterId(0));
        let snap = s.read(ObjectId(1)).unwrap();
        assert_eq!(snap.updates, 2);
        assert_eq!(snap.meta, 10);
        assert_eq!(snap.latest_update, Some(SimTime::from_secs(2)));
    }

    #[test]
    fn seqs_are_per_object() {
        let mut s = store(0);
        s.open(ObjectId(1));
        s.open(ObjectId(2));
        let a = s.write(ObjectId(1), SimTime::from_secs(1), 0, payload());
        let b = s.write(ObjectId(2), SimTime::from_secs(1), 0, payload());
        assert_eq!(a.seq(), 1);
        assert_eq!(b.seq(), 1);
    }

    #[test]
    fn ingest_requires_open_replica() {
        let mut a = store(0);
        let mut b = store(1);
        a.open(ObjectId(1));
        let u = a.write(ObjectId(1), SimTime::from_secs(1), 3, payload());
        assert!(matches!(b.ingest(u.clone()), Err(IdeaError::UnknownObject(_))));
        b.open(ObjectId(1));
        assert_eq!(b.ingest(u).unwrap(), ApplyOutcome::Applied);
        assert_eq!(b.read(ObjectId(1)).unwrap().meta, 3);
    }

    #[test]
    fn read_unknown_object_fails() {
        let s = store(0);
        assert!(matches!(s.read(ObjectId(9)), Err(IdeaError::UnknownObject(_))));
    }

    #[test]
    fn two_stores_exchange_and_converge() {
        let mut a = store(0);
        let mut b = store(1);
        a.open(ObjectId(1));
        b.open(ObjectId(1));
        let ua = a.write(ObjectId(1), SimTime::from_secs(1), 1, payload());
        let ub = b.write(ObjectId(1), SimTime::from_secs(2), 2, payload());
        a.ingest(ub).unwrap();
        b.ingest(ua).unwrap();
        let sa = a.read(ObjectId(1)).unwrap();
        let sb = b.read(ObjectId(1)).unwrap();
        assert_eq!(sa.meta, sb.meta);
        assert!(sa.version.triple_against(&sb.version).is_zero());
    }

    #[test]
    fn resume_writes_after_reconciliation() {
        let mut s = store(0);
        s.open(ObjectId(1));
        let keep = s.write(ObjectId(1), SimTime::from_secs(1), 1, payload());
        s.write(ObjectId(1), SimTime::from_secs(2), 1, payload());
        // Reconciliation kept only seq 1 of this writer (the reference never
        // sanctioned seq 2); local sequencing must continue from 2 again.
        let extras = s.replica_mut(ObjectId(1)).unwrap().reconcile_to(&[keep]);
        assert_eq!(extras.len(), 1);
        s.resume_writes_after(ObjectId(1), 1);
        let u = s.write(ObjectId(1), SimTime::from_secs(3), 1, payload());
        assert_eq!(u.seq(), 2);
        assert_eq!(s.read(ObjectId(1)).unwrap().updates, 2);
    }

    #[test]
    fn objects_lists_hosted_replicas() {
        let mut s = store(0);
        s.open(ObjectId(3));
        s.open(ObjectId(1));
        assert_eq!(s.objects().collect::<Vec<_>>(), vec![ObjectId(1), ObjectId(3)]);
        assert_eq!(s.node(), NodeId(0));
        assert_eq!(s.writer(), WriterId(0));
    }

    #[test]
    fn sharded_store_routes_consistently() {
        let mut s = ShardedStore::with_shards(NodeId(0), WriterId(0), 4);
        assert_eq!(s.shard_count(), 4);
        for obj in 0..32u64 {
            s.open(ObjectId(obj));
            s.write(ObjectId(obj), SimTime::from_secs(1), obj as i64, payload());
        }
        // Every object is hosted by exactly the shard the router names.
        for obj in 0..32u64 {
            let owner = s.shard_of(ObjectId(obj));
            assert!(s.shard(owner).replica(ObjectId(obj)).is_ok());
            for other in 0..4u32 {
                if other != owner.0 {
                    assert!(
                        s.shard(ShardId(other)).replica(ObjectId(obj)).is_err(),
                        "object {obj} leaked into shard {other}"
                    );
                }
            }
            assert_eq!(s.read(ObjectId(obj)).unwrap().meta, obj as i64);
        }
        // The whole-node object listing is still sorted.
        let ids: Vec<ObjectId> = s.objects().collect();
        assert_eq!(ids.len(), 32);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sharded_behaviour_matches_single_map() {
        // Same operation sequence on S=1 and S=4: identical outcomes.
        let run = |shards: usize| {
            let mut s = ShardedStore::with_shards(NodeId(0), WriterId(0), shards);
            let mut out = Vec::new();
            for round in 1..=3u64 {
                for obj in 0..8u64 {
                    s.open(ObjectId(obj));
                    let u = s.write(
                        ObjectId(obj),
                        SimTime::from_secs(round),
                        (obj + round) as i64,
                        payload(),
                    );
                    out.push((u.seq(), u.object));
                }
            }
            for obj in 0..8u64 {
                let snap = s.read(ObjectId(obj)).unwrap();
                out.push((snap.updates as u64, snap.object));
            }
            out
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn state_hash_is_shard_count_independent() {
        let run = |shards: usize| {
            let mut s = ShardedStore::with_shards(NodeId(0), WriterId(0), shards);
            for obj in 0..16u64 {
                s.open(ObjectId(obj));
                s.write(ObjectId(obj), SimTime::from_secs(obj), obj as i64, payload());
            }
            s.state_hash()
        };
        assert_eq!(run(1), run(4), "the digest must not depend on partitioning");
        assert_ne!(run(1), 0);
        assert_ne!(run(1), ShardedStore::new(NodeId(0), WriterId(0)).state_hash());
    }

    #[test]
    fn into_and_from_shards_round_trip() {
        let mut s = ShardedStore::with_shards(NodeId(0), WriterId(0), 2);
        s.open(ObjectId(1));
        s.write(ObjectId(1), SimTime::from_secs(1), 9, payload());
        let shards = s.into_shards();
        assert_eq!(shards.len(), 2);
        let s = ShardedStore::from_shards(shards);
        assert_eq!(s.read(ObjectId(1)).unwrap().meta, 9);
    }
}
