//! One node's store: every replica it hosts, behind a read/write API.

use crate::replica::{ApplyOutcome, Replica};
use idea_types::{
    IdeaError, NodeId, ObjectId, Result, SimTime, Update, UpdateId, UpdatePayload, WriterId,
};
use idea_vv::ExtendedVersionVector;
use std::collections::BTreeMap;

/// What a read returns: the replica's current value view.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The object read.
    pub object: ObjectId,
    /// Number of updates reflected in the snapshot.
    pub updates: usize,
    /// Critical metadata value at read time.
    pub meta: i64,
    /// The replica's extended version vector at read time.
    pub version: ExtendedVersionVector,
    /// Timestamp of the most recent local application (issue time of the
    /// newest update), if any.
    pub latest_update: Option<SimTime>,
}

/// All replicas hosted by one node.
#[derive(Debug, Clone)]
pub struct NodeStore {
    node: NodeId,
    /// The writer identity used for this node's local writes.
    writer: WriterId,
    replicas: BTreeMap<ObjectId, Replica>,
    /// Next local sequence number per object.
    next_seq: BTreeMap<ObjectId, u64>,
}

impl NodeStore {
    /// A store for `node`, writing as `writer`.
    pub fn new(node: NodeId, writer: WriterId) -> Self {
        NodeStore { node, writer, replicas: BTreeMap::new(), next_seq: BTreeMap::new() }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The local writer identity.
    pub fn writer(&self) -> WriterId {
        self.writer
    }

    /// Creates (or returns) the replica of `object`.
    pub fn open(&mut self, object: ObjectId) -> &mut Replica {
        self.replicas.entry(object).or_insert_with(|| Replica::new(object))
    }

    /// Immutable access to a replica.
    pub fn replica(&self, object: ObjectId) -> Result<&Replica> {
        self.replicas.get(&object).ok_or(IdeaError::UnknownObject(object))
    }

    /// Mutable access to a replica.
    pub fn replica_mut(&mut self, object: ObjectId) -> Result<&mut Replica> {
        self.replicas.get_mut(&object).ok_or(IdeaError::UnknownObject(object))
    }

    /// Objects hosted by this node, in id order (no per-call allocation).
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.replicas.keys().copied()
    }

    /// Issues a local write: assigns the next sequence number, applies it to
    /// the local replica and returns the update for dissemination.
    pub fn write(
        &mut self,
        object: ObjectId,
        at: SimTime,
        meta_delta: i64,
        payload: UpdatePayload,
    ) -> Update {
        let seq = self.next_seq.entry(object).or_insert(1);
        let update = Update {
            object,
            id: UpdateId { writer: self.writer, seq: *seq },
            at,
            meta_delta,
            payload,
        };
        *seq += 1;
        let replica = self.open(object);
        let outcome = replica.apply(update.clone()).expect("own write applies");
        debug_assert_eq!(outcome, ApplyOutcome::Applied, "local writes are in order");
        update
    }

    /// Applies a remote update to the local replica.
    ///
    /// # Errors
    /// Fails when no replica of the object exists (`open` it first).
    pub fn ingest(&mut self, update: Update) -> Result<ApplyOutcome> {
        let replica =
            self.replicas.get_mut(&update.object).ok_or(IdeaError::UnknownObject(update.object))?;
        replica.apply(update)
    }

    /// Reads the current snapshot of `object`.
    ///
    /// # Errors
    /// Fails when no replica of the object exists.
    pub fn read(&self, object: ObjectId) -> Result<Snapshot> {
        let r = self.replica(object)?;
        Ok(Snapshot {
            object,
            updates: r.len(),
            meta: r.meta(),
            version: r.version().clone(),
            latest_update: r.version().latest_update_time(),
        })
    }

    /// Resets the local write sequence to continue after `seq` (used after a
    /// reconciliation re-sequenced this writer's extra updates).
    pub fn resume_writes_after(&mut self, object: ObjectId, seq: u64) {
        self.next_seq.insert(object, seq + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn store(node: u32) -> NodeStore {
        NodeStore::new(NodeId(node), WriterId(node))
    }

    fn payload() -> UpdatePayload {
        UpdatePayload::Opaque(Bytes::new())
    }

    #[test]
    fn writes_assign_consecutive_seqs() {
        let mut s = store(0);
        s.open(ObjectId(1));
        let u1 = s.write(ObjectId(1), SimTime::from_secs(1), 5, payload());
        let u2 = s.write(ObjectId(1), SimTime::from_secs(2), 5, payload());
        assert_eq!(u1.seq(), 1);
        assert_eq!(u2.seq(), 2);
        assert_eq!(u1.writer(), WriterId(0));
        let snap = s.read(ObjectId(1)).unwrap();
        assert_eq!(snap.updates, 2);
        assert_eq!(snap.meta, 10);
        assert_eq!(snap.latest_update, Some(SimTime::from_secs(2)));
    }

    #[test]
    fn seqs_are_per_object() {
        let mut s = store(0);
        s.open(ObjectId(1));
        s.open(ObjectId(2));
        let a = s.write(ObjectId(1), SimTime::from_secs(1), 0, payload());
        let b = s.write(ObjectId(2), SimTime::from_secs(1), 0, payload());
        assert_eq!(a.seq(), 1);
        assert_eq!(b.seq(), 1);
    }

    #[test]
    fn ingest_requires_open_replica() {
        let mut a = store(0);
        let mut b = store(1);
        a.open(ObjectId(1));
        let u = a.write(ObjectId(1), SimTime::from_secs(1), 3, payload());
        assert!(matches!(b.ingest(u.clone()), Err(IdeaError::UnknownObject(_))));
        b.open(ObjectId(1));
        assert_eq!(b.ingest(u).unwrap(), ApplyOutcome::Applied);
        assert_eq!(b.read(ObjectId(1)).unwrap().meta, 3);
    }

    #[test]
    fn read_unknown_object_fails() {
        let s = store(0);
        assert!(matches!(s.read(ObjectId(9)), Err(IdeaError::UnknownObject(_))));
    }

    #[test]
    fn two_stores_exchange_and_converge() {
        let mut a = store(0);
        let mut b = store(1);
        a.open(ObjectId(1));
        b.open(ObjectId(1));
        let ua = a.write(ObjectId(1), SimTime::from_secs(1), 1, payload());
        let ub = b.write(ObjectId(1), SimTime::from_secs(2), 2, payload());
        a.ingest(ub).unwrap();
        b.ingest(ua).unwrap();
        let sa = a.read(ObjectId(1)).unwrap();
        let sb = b.read(ObjectId(1)).unwrap();
        assert_eq!(sa.meta, sb.meta);
        assert!(sa.version.triple_against(&sb.version).is_zero());
    }

    #[test]
    fn resume_writes_after_reconciliation() {
        let mut s = store(0);
        s.open(ObjectId(1));
        let keep = s.write(ObjectId(1), SimTime::from_secs(1), 1, payload());
        s.write(ObjectId(1), SimTime::from_secs(2), 1, payload());
        // Reconciliation kept only seq 1 of this writer (the reference never
        // sanctioned seq 2); local sequencing must continue from 2 again.
        let extras = s.replica_mut(ObjectId(1)).unwrap().reconcile_to(&[keep]);
        assert_eq!(extras.len(), 1);
        s.resume_writes_after(ObjectId(1), 1);
        let u = s.write(ObjectId(1), SimTime::from_secs(3), 1, payload());
        assert_eq!(u.seq(), 2);
        assert_eq!(s.read(ObjectId(1)).unwrap().updates, 2);
    }

    #[test]
    fn objects_lists_hosted_replicas() {
        let mut s = store(0);
        s.open(ObjectId(3));
        s.open(ObjectId(1));
        assert_eq!(s.objects().collect::<Vec<_>>(), vec![ObjectId(1), ObjectId(3)]);
        assert_eq!(s.node(), NodeId(0));
        assert_eq!(s.writer(), WriterId(0));
    }
}
