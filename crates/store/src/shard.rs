//! One shard of a node's store: the replicas whose [`ObjectId`] hashes to
//! this shard, their local write sequencing, and the shard-local dirty-set.
//!
//! A [`StoreShard`] is the unit the protocol layer (`idea-core`) owns per
//! shard worker: it never touches objects of other shards, so two shards of
//! the same node can be mutated concurrently without coordination. The
//! routing itself — which shard owns which object — lives in
//! [`idea_types::ShardId`] so every layer agrees on it;
//! [`crate::ShardedStore`] is the whole-node composition.

use crate::replica::{ApplyOutcome, Checkpoint, Replica};
use idea_types::{
    IdeaError, NodeId, ObjectId, Result, SimTime, Update, UpdateId, UpdatePayload, WriterId,
};
use idea_vv::{ExtendedVersionVector, VersionVector};
use idea_wal::{ObjectSnapshot, Recovered, ShardSnapshot, ShardWal, WalRecord};
use std::collections::{BTreeMap, BTreeSet};

/// What a read returns: the replica's current value view (owned).
///
/// Cloning the full [`ExtendedVersionVector`] per read is only warranted
/// when the caller keeps the version; level-only readers should use
/// [`StoreShard::read_view`] / the borrowing [`SnapshotView`] instead.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The object read.
    pub object: ObjectId,
    /// Number of updates reflected in the snapshot.
    pub updates: usize,
    /// Critical metadata value at read time.
    pub meta: i64,
    /// The replica's extended version vector at read time.
    pub version: ExtendedVersionVector,
    /// Timestamp of the most recent local application (issue time of the
    /// newest update), if any.
    pub latest_update: Option<SimTime>,
}

/// A read that borrows the replica instead of cloning its version vector.
///
/// This is the allocation-free sibling of [`Snapshot`] for callers that only
/// need the value view (meta, update count, recency) — the common case for
/// level probes and application polling loops. [`SnapshotView::to_owned`]
/// upgrades to a full [`Snapshot`] when the version must outlive the borrow.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    /// The object read.
    pub object: ObjectId,
    /// Number of updates reflected in the snapshot.
    pub updates: usize,
    /// Critical metadata value at read time.
    pub meta: i64,
    /// The replica's extended version vector (borrowed).
    pub version: &'a ExtendedVersionVector,
    /// Timestamp of the most recent local application, if any.
    pub latest_update: Option<SimTime>,
}

impl SnapshotView<'_> {
    /// Upgrades to an owned [`Snapshot`] (clones the version vector).
    pub fn to_owned(&self) -> Snapshot {
        Snapshot {
            object: self.object,
            updates: self.updates,
            meta: self.meta,
            version: self.version.clone(),
            latest_update: self.latest_update,
        }
    }
}

/// The replicas of one shard, behind the same read/write API as the whole
/// store.
#[derive(Debug)]
pub struct StoreShard {
    node: NodeId,
    writer: WriterId,
    replicas: BTreeMap<ObjectId, Replica>,
    /// Next local sequence number per object.
    next_seq: BTreeMap<ObjectId, u64>,
    /// Objects with a pending detection probe: local writes mark their
    /// object dirty, and the protocol layer marks read-triggered probes via
    /// [`StoreShard::mark_dirty`]; the detection layer's batching window
    /// drains the set ([`StoreShard::take_dirty`]) to start one coalesced
    /// round per dirty object. Remote ingests do *not* dirty — only local
    /// triggers start probes (§4.2).
    dirty: BTreeSet<ObjectId>,
    /// The attached write-ahead log, when durability is on. Every sanctioned
    /// mutation appends a [`WalRecord`] before it is applied; the handle
    /// also owns snapshot installation ([`StoreShard::snapshot_now`]).
    wal: Option<ShardWal>,
}

impl Clone for StoreShard {
    /// Clones the in-memory state only: the clone has **no** attached WAL
    /// (a file handle cannot be meaningfully duplicated, and a cloned shard
    /// appending to the original's log would corrupt replay order). Clones
    /// are in-memory working copies — baselines, tests, harness snapshots.
    fn clone(&self) -> Self {
        StoreShard {
            node: self.node,
            writer: self.writer,
            replicas: self.replicas.clone(),
            next_seq: self.next_seq.clone(),
            dirty: self.dirty.clone(),
            wal: None,
        }
    }
}

impl StoreShard {
    /// An empty shard for `node`, writing as `writer`.
    pub fn new(node: NodeId, writer: WriterId) -> Self {
        StoreShard {
            node,
            writer,
            replicas: BTreeMap::new(),
            next_seq: BTreeMap::new(),
            dirty: BTreeSet::new(),
            wal: None,
        }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The local writer identity.
    pub fn writer(&self) -> WriterId {
        self.writer
    }

    /// Creates (or returns) the replica of `object`. First creation is a
    /// sanctioned transition and is WAL-logged when durability is on.
    pub fn open(&mut self, object: ObjectId) -> &mut Replica {
        if !self.replicas.contains_key(&object) {
            self.log_wal(WalRecord::Open { object });
            self.replicas.insert(object, Replica::new(object));
        }
        self.replicas.get_mut(&object).expect("just inserted")
    }

    /// Immutable access to a replica.
    pub fn replica(&self, object: ObjectId) -> Result<&Replica> {
        self.replicas.get(&object).ok_or(IdeaError::UnknownObject(object))
    }

    /// Mutable access to a replica.
    pub fn replica_mut(&mut self, object: ObjectId) -> Result<&mut Replica> {
        self.replicas.get_mut(&object).ok_or(IdeaError::UnknownObject(object))
    }

    /// Objects hosted by this shard, in id order (no per-call allocation).
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.replicas.keys().copied()
    }

    /// Number of replicas hosted by this shard.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True when the shard hosts no replica.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Issues a local write: assigns the next sequence number, applies it to
    /// the local replica, marks the object dirty and returns the update for
    /// dissemination.
    pub fn write(
        &mut self,
        object: ObjectId,
        at: SimTime,
        meta_delta: i64,
        payload: UpdatePayload,
    ) -> Update {
        let seq = self.next_seq.entry(object).or_insert(1);
        let update = Update {
            object,
            id: UpdateId { writer: self.writer, seq: *seq },
            at,
            meta_delta,
            payload,
        };
        *seq += 1;
        self.open(object);
        if self.wal.is_some() {
            self.log_wal(WalRecord::Write { update: update.clone() });
        }
        let replica = self.replicas.get_mut(&object).expect("opened above");
        let outcome = replica.apply(update.clone()).expect("own write applies");
        debug_assert_eq!(outcome, ApplyOutcome::Applied, "local writes are in order");
        self.dirty.insert(object);
        update
    }

    /// Applies a remote update to the local replica. Does not mark the
    /// object dirty — remote traffic never starts local probes (§4.2).
    ///
    /// # Errors
    /// Fails when no replica of the object exists (`open` it first).
    pub fn ingest(&mut self, update: Update) -> Result<ApplyOutcome> {
        let object = update.object;
        let seen = self
            .replicas
            .get(&object)
            .ok_or(IdeaError::UnknownObject(object))?
            .version()
            .count(update.writer());
        // Already-applied duplicates are not re-logged; new updates are —
        // including out-of-order ones the replica will buffer as pending.
        if seen < update.seq() && self.wal.is_some() {
            self.log_wal(WalRecord::Ingest { update: update.clone() });
        }
        self.replicas.get_mut(&object).expect("checked above").apply(update)
    }

    /// Reads the current snapshot of `object` (owned; clones the version).
    ///
    /// # Errors
    /// Fails when no replica of the object exists.
    pub fn read(&self, object: ObjectId) -> Result<Snapshot> {
        self.read_view(object).map(|v| v.to_owned())
    }

    /// Reads the current snapshot of `object` without cloning the version.
    ///
    /// # Errors
    /// Fails when no replica of the object exists.
    pub fn read_view(&self, object: ObjectId) -> Result<SnapshotView<'_>> {
        let r = self.replica(object)?;
        Ok(SnapshotView {
            object,
            updates: r.len(),
            meta: r.meta(),
            version: r.version(),
            latest_update: r.version().latest_update_time(),
        })
    }

    /// Resets the local write sequence to continue after `seq` (used after a
    /// reconciliation re-sequenced this writer's extra updates).
    pub fn resume_writes_after(&mut self, object: ObjectId, seq: u64) {
        self.log_wal(WalRecord::ResumeSeq { object, seq });
        self.next_seq.insert(object, seq + 1);
    }

    /// Marks an object dirty without a write (read-triggered probes).
    pub fn mark_dirty(&mut self, object: ObjectId) {
        self.dirty.insert(object);
    }

    /// Drains the dirty-set: the objects marked since the previous drain.
    pub fn take_dirty(&mut self) -> BTreeSet<ObjectId> {
        std::mem::take(&mut self.dirty)
    }

    /// Objects currently marked dirty.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    // ------------------------------------------------------- durability

    /// Attaches a WAL handle: every sanctioned mutation from here on is
    /// appended before it is applied. A fresh identity attaches
    /// [`ShardWal::create`]'s genesis log; a restart replays first
    /// ([`StoreShard::recover`]) and then reattaches [`ShardWal::open`]'s
    /// handle.
    pub fn attach_wal(&mut self, wal: ShardWal) {
        self.wal = Some(wal);
    }

    /// The attached WAL, if durability is on (introspection/tests).
    pub fn wal(&self) -> Option<&ShardWal> {
        self.wal.as_ref()
    }

    /// Forces buffered WAL appends to disk (the Async mode's clean-shutdown
    /// flush; no-op without a WAL).
    pub fn sync_wal(&mut self) {
        if let Some(w) = self.wal.as_mut() {
            w.sync().expect("WAL sync failed: cannot guarantee durability");
        }
    }

    /// Appends `rec` when a WAL is attached, then installs a snapshot once
    /// the tail passes the configured threshold. Append-path I/O failure is
    /// fail-stop: a replica that cannot persist must not acknowledge
    /// writes.
    fn log_wal(&mut self, rec: WalRecord) {
        if self.wal.is_none() {
            return;
        }
        // Snapshot *before* appending: records are logged ahead of their
        // in-memory application, so right now every record already in the
        // tail is applied — snapshotting here is consistent, and `rec`
        // lands in the fresh tail instead of being truncated unapplied.
        if self.wal.as_ref().expect("checked above").should_snapshot() {
            self.snapshot_now();
        }
        self.wal
            .as_mut()
            .expect("checked above")
            .append(&rec)
            .expect("WAL append failed: cannot guarantee durability");
    }

    /// Captures the shard's full in-memory state: next sequence numbers,
    /// applied logs, and buffered out-of-order (pending) updates.
    pub fn to_snapshot(&self, shard: u32) -> ShardSnapshot {
        ShardSnapshot {
            node: self.node,
            writer: self.writer,
            shard,
            objects: self
                .replicas
                .iter()
                .map(|(object, r)| ObjectSnapshot {
                    object: *object,
                    next_seq: self.next_seq.get(object).copied().unwrap_or(0),
                    log: r.log().to_vec(),
                    pending: r.pending_updates().cloned().collect(),
                })
                .collect(),
        }
    }

    /// Installs a durable snapshot now and truncates the log behind it
    /// (no-op without a WAL). Clean shutdown ends with this so a restart
    /// sees an empty tail.
    pub fn snapshot_now(&mut self) {
        let Some(shard) = self.wal.as_ref().map(ShardWal::shard) else { return };
        let snap = self.to_snapshot(shard);
        self.wal
            .as_mut()
            .expect("checked above")
            .install_snapshot(&snap)
            .expect("WAL snapshot failed: cannot guarantee durability");
    }

    /// Rebuilds a shard from recovered durable state: the snapshot first,
    /// then the log tail replayed in append order. The result has no WAL
    /// attached — the caller reattaches the truncated handle afterwards.
    pub fn recover(node: NodeId, writer: WriterId, recovered: &Recovered) -> StoreShard {
        let mut s = StoreShard::new(node, writer);
        if let Some(snap) = &recovered.snapshot {
            for os in &snap.objects {
                let r = s.open(os.object);
                for u in &os.log {
                    let _ = r.apply(u.clone());
                }
                for u in &os.pending {
                    let _ = r.apply(u.clone());
                }
                if os.next_seq > 0 {
                    s.next_seq.insert(os.object, os.next_seq);
                }
            }
        }
        for rec in &recovered.tail {
            s.replay(rec);
        }
        s.dirty.clear();
        s
    }

    /// Re-applies one logged record to in-memory state. Replay is exactly
    /// the mutation the record describes — no WAL appends (none is
    /// attached yet), no dirty marks.
    fn replay(&mut self, rec: &WalRecord) {
        match rec {
            WalRecord::Open { object } => {
                self.open(*object);
            }
            WalRecord::Write { update } => {
                let next = self.next_seq.entry(update.object).or_insert(1);
                *next = (*next).max(update.seq() + 1);
                let _ = self.open(update.object).apply(update.clone());
            }
            WalRecord::Ingest { update } => {
                let _ = self.open(update.object).apply(update.clone());
            }
            WalRecord::Reconcile { object, log } => {
                self.open(*object).reconcile_to(log);
            }
            WalRecord::DropExtras { object, counts } => {
                self.open(*object).drop_extras(counts);
            }
            WalRecord::ResumeSeq { object, seq } => {
                self.next_seq.insert(*object, *seq + 1);
            }
            WalRecord::Truncate { object, keep } => {
                let r = self.open(*object);
                let keep = (*keep as usize).min(r.len());
                let prefix = r.log()[..keep].to_vec();
                r.reconcile_to(&prefix);
            }
        }
    }

    /// Reconciles `object`'s replica to the sanctioned reference log,
    /// WAL-logging the transition first. See [`Replica::reconcile_to`].
    ///
    /// # Errors
    /// Fails when no replica of the object exists.
    pub fn reconcile_to(
        &mut self,
        object: ObjectId,
        reference_log: &[Update],
    ) -> Result<Vec<Update>> {
        self.replica(object)?;
        if self.wal.is_some() {
            self.log_wal(WalRecord::Reconcile { object, log: reference_log.to_vec() });
        }
        Ok(self.replicas.get_mut(&object).expect("checked above").reconcile_to(reference_log))
    }

    /// Drops updates beyond the sanctioned `counts`, WAL-logging the
    /// transition first. See [`Replica::drop_extras`].
    ///
    /// # Errors
    /// Fails when no replica of the object exists.
    pub fn drop_extras(&mut self, object: ObjectId, counts: &VersionVector) -> Result<Vec<Update>> {
        self.replica(object)?;
        if self.wal.is_some() {
            self.log_wal(WalRecord::DropExtras { object, counts: counts.clone() });
        }
        Ok(self.replicas.get_mut(&object).expect("checked above").drop_extras(counts))
    }

    /// Rolls `object` back to `cp`, WAL-logging the truncation once it
    /// succeeds: the record is deterministic, so log-after-apply is safe
    /// here and avoids logging a rollback the replica then rejects.
    ///
    /// # Errors
    /// Fails when no replica of the object exists or the checkpoint is
    /// beyond the current log.
    pub fn rollback(&mut self, object: ObjectId, cp: &Checkpoint) -> Result<Vec<Update>> {
        let keep = cp.log_len() as u64;
        let dropped = self.replica_mut(object)?.rollback(cp)?;
        if self.wal.is_some() {
            self.log_wal(WalRecord::Truncate { object, keep });
        }
        Ok(dropped)
    }

    /// The rolling content digest of every replica in this shard: each
    /// object's [`Replica::state_hash`] folded through
    /// [`idea_wal::hash::object_hash`] and XOR-combined, so the node-level
    /// digest is independent of shard count and delivery interleaving.
    pub fn state_hash(&self) -> u64 {
        self.replicas
            .iter()
            .fold(0, |acc, (o, r)| acc ^ idea_wal::hash::object_hash(*o, r.state_hash()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn shard(node: u32) -> StoreShard {
        StoreShard::new(NodeId(node), WriterId(node))
    }

    fn payload() -> UpdatePayload {
        UpdatePayload::Opaque(Bytes::new())
    }

    #[test]
    fn writes_mark_dirty_but_ingests_do_not() {
        let mut a = shard(0);
        let mut b = shard(1);
        a.open(ObjectId(1));
        b.open(ObjectId(1));
        assert_eq!(a.dirty_len(), 0);
        let u = a.write(ObjectId(1), SimTime::from_secs(1), 3, payload());
        assert_eq!(a.dirty_len(), 1);
        assert_eq!(a.take_dirty().into_iter().collect::<Vec<_>>(), vec![ObjectId(1)]);
        assert_eq!(a.dirty_len(), 0, "drain empties the set");

        // Remote traffic never starts local probes: ingest must not dirty.
        assert_eq!(b.ingest(u.clone()).unwrap(), ApplyOutcome::Applied);
        assert_eq!(b.dirty_len(), 0);
        // Explicit marking (read-triggered probes) is idempotent.
        b.mark_dirty(ObjectId(1));
        b.mark_dirty(ObjectId(1));
        assert_eq!(b.dirty_len(), 1);
    }

    #[test]
    fn read_view_borrows_and_upgrades() {
        let mut s = shard(0);
        s.open(ObjectId(1));
        s.write(ObjectId(1), SimTime::from_secs(1), 5, payload());
        let view = s.read_view(ObjectId(1)).unwrap();
        assert_eq!(view.meta, 5);
        assert_eq!(view.updates, 1);
        assert_eq!(view.latest_update, Some(SimTime::from_secs(1)));
        let owned = view.to_owned();
        assert_eq!(owned.meta, view.meta);
        assert_eq!(&owned.version, view.version);
        assert!(matches!(s.read_view(ObjectId(9)), Err(IdeaError::UnknownObject(_))));
    }

    #[test]
    fn len_tracks_replicas() {
        let mut s = shard(0);
        assert!(s.is_empty());
        s.open(ObjectId(1));
        s.open(ObjectId(2));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    // --------------------------------------------------- durability tests

    use idea_wal::DurabilityConfig;

    fn tmp_cfg(tag: &str) -> DurabilityConfig {
        let dir =
            std::env::temp_dir().join(format!("idea-store-shard-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DurabilityConfig::sync(dir)
    }

    fn remote(object: u64, writer: u32, seq: u64, delta: i64) -> Update {
        Update {
            object: ObjectId(object),
            id: UpdateId { writer: WriterId(writer), seq },
            at: SimTime::from_secs(seq),
            meta_delta: delta,
            payload: payload(),
        }
    }

    fn reopen(cfg: &DurabilityConfig) -> StoreShard {
        let (wal, recovered) = ShardWal::open(cfg, NodeId(0), 0).unwrap();
        let mut s = StoreShard::recover(NodeId(0), WriterId(0), &recovered);
        s.attach_wal(wal);
        s
    }

    #[test]
    fn wal_replay_rebuilds_writes_ingests_and_pending() {
        let cfg = tmp_cfg("replay");
        let mut s = shard(0);
        s.attach_wal(ShardWal::create(&cfg, NodeId(0), 0).unwrap());
        s.open(ObjectId(1));
        s.write(ObjectId(1), SimTime::from_secs(1), 3, payload());
        s.write(ObjectId(1), SimTime::from_secs(2), -1, payload());
        // A remote writer arriving out of order: seq 2 buffers as pending,
        // seq 1 releases both.
        s.ingest(remote(1, 9, 2, 10)).unwrap();
        s.ingest(remote(1, 9, 1, 4)).unwrap();
        // A duplicate must not be re-logged (replay would still dedup, but
        // the log should stay minimal).
        s.ingest(remote(1, 9, 1, 4)).unwrap();
        let expect_hash = s.state_hash();
        let expect_meta = s.read(ObjectId(1)).unwrap().meta;
        drop(s);

        let mut r = reopen(&cfg);
        assert_eq!(r.state_hash(), expect_hash, "recovered digest pins equality");
        assert_eq!(r.read(ObjectId(1)).unwrap().meta, expect_meta);
        // Local sequencing also recovered: the next write continues at 3.
        let u = r.write(ObjectId(1), SimTime::from_secs(3), 1, payload());
        assert_eq!(u.seq(), 3);
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn pending_survives_via_snapshot() {
        let cfg = tmp_cfg("pending-snap");
        let mut s = shard(0);
        s.attach_wal(ShardWal::create(&cfg, NodeId(0), 0).unwrap());
        s.open(ObjectId(1));
        // seq 2 with no seq 1: stays pending (not part of the applied log).
        s.ingest(remote(1, 9, 2, 10)).unwrap();
        let hash_with_pending = s.state_hash();
        s.snapshot_now();
        assert_eq!(s.wal().unwrap().tail_records(), 0);
        drop(s);

        let mut r = reopen(&cfg);
        assert_eq!(r.state_hash(), hash_with_pending);
        // The buffered update is still live: seq 1 releases both.
        r.ingest(remote(1, 9, 1, 4)).unwrap();
        assert_eq!(r.read(ObjectId(1)).unwrap().updates, 2);
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn reference_transitions_replay_exactly() {
        let cfg = tmp_cfg("reference");
        let mut s = shard(0);
        s.attach_wal(ShardWal::create(&cfg, NodeId(0), 0).unwrap());
        s.open(ObjectId(1));
        for i in 1..=4 {
            s.write(ObjectId(1), SimTime::from_secs(i), 1, payload());
        }
        // A sanctioned reference keeps only this writer's first two updates.
        let reference: Vec<Update> = s.replica(ObjectId(1)).unwrap().log()[..2].to_vec();
        let invalidated = s.reconcile_to(ObjectId(1), &reference).unwrap();
        assert_eq!(invalidated.len(), 2);
        s.resume_writes_after(ObjectId(1), 2);
        let expect_hash = s.state_hash();
        drop(s);

        let mut r = reopen(&cfg);
        assert_eq!(r.state_hash(), expect_hash);
        let u = r.write(ObjectId(1), SimTime::from_secs(9), 1, payload());
        assert_eq!(u.seq(), 3, "ResumeSeq replays");
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn drop_extras_and_rollback_replay() {
        let cfg = tmp_cfg("dropex");
        let mut s = shard(0);
        s.attach_wal(ShardWal::create(&cfg, NodeId(0), 0).unwrap());
        s.open(ObjectId(1));
        s.write(ObjectId(1), SimTime::from_secs(1), 1, payload());
        s.write(ObjectId(1), SimTime::from_secs(2), 1, payload());
        s.ingest(remote(1, 9, 1, 7)).unwrap();
        let counts = idea_vv::VersionVector::from_pairs([(WriterId(0), 1), (WriterId(9), 1)]);
        let dropped = s.drop_extras(ObjectId(1), &counts).unwrap();
        assert_eq!(dropped.len(), 1);
        let expect_hash = s.state_hash();
        drop(s);

        let r = reopen(&cfg);
        assert_eq!(r.state_hash(), expect_hash);
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn threshold_snapshot_truncates_and_recovers() {
        let cfg = DurabilityConfig { snapshot_every: 4, ..tmp_cfg("threshold") };
        let mut s = shard(0);
        s.attach_wal(ShardWal::create(&cfg, NodeId(0), 0).unwrap());
        s.open(ObjectId(1));
        for i in 1..=20 {
            s.write(ObjectId(1), SimTime::from_secs(i), 1, payload());
        }
        assert!(s.wal().unwrap().tail_records() < 20, "threshold snapshots keep the tail bounded");
        let expect_hash = s.state_hash();
        drop(s);

        let r = reopen(&cfg);
        assert_eq!(r.state_hash(), expect_hash);
        assert_eq!(r.read(ObjectId(1)).unwrap().updates, 20);
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn clone_detaches_the_wal() {
        let cfg = tmp_cfg("clone");
        let mut s = shard(0);
        s.attach_wal(ShardWal::create(&cfg, NodeId(0), 0).unwrap());
        s.write(ObjectId(1), SimTime::from_secs(1), 1, payload());
        let c = s.clone();
        assert!(c.wal().is_none(), "clones are in-memory working copies");
        assert_eq!(c.state_hash(), s.state_hash());
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }
}
