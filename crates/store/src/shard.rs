//! One shard of a node's store: the replicas whose [`ObjectId`] hashes to
//! this shard, their local write sequencing, and the shard-local dirty-set.
//!
//! A [`StoreShard`] is the unit the protocol layer (`idea-core`) owns per
//! shard worker: it never touches objects of other shards, so two shards of
//! the same node can be mutated concurrently without coordination. The
//! routing itself — which shard owns which object — lives in
//! [`idea_types::ShardId`] so every layer agrees on it;
//! [`crate::ShardedStore`] is the whole-node composition.

use crate::replica::{ApplyOutcome, Replica};
use idea_types::{
    IdeaError, NodeId, ObjectId, Result, SimTime, Update, UpdateId, UpdatePayload, WriterId,
};
use idea_vv::ExtendedVersionVector;
use std::collections::{BTreeMap, BTreeSet};

/// What a read returns: the replica's current value view (owned).
///
/// Cloning the full [`ExtendedVersionVector`] per read is only warranted
/// when the caller keeps the version; level-only readers should use
/// [`StoreShard::read_view`] / the borrowing [`SnapshotView`] instead.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The object read.
    pub object: ObjectId,
    /// Number of updates reflected in the snapshot.
    pub updates: usize,
    /// Critical metadata value at read time.
    pub meta: i64,
    /// The replica's extended version vector at read time.
    pub version: ExtendedVersionVector,
    /// Timestamp of the most recent local application (issue time of the
    /// newest update), if any.
    pub latest_update: Option<SimTime>,
}

/// A read that borrows the replica instead of cloning its version vector.
///
/// This is the allocation-free sibling of [`Snapshot`] for callers that only
/// need the value view (meta, update count, recency) — the common case for
/// level probes and application polling loops. [`SnapshotView::to_owned`]
/// upgrades to a full [`Snapshot`] when the version must outlive the borrow.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    /// The object read.
    pub object: ObjectId,
    /// Number of updates reflected in the snapshot.
    pub updates: usize,
    /// Critical metadata value at read time.
    pub meta: i64,
    /// The replica's extended version vector (borrowed).
    pub version: &'a ExtendedVersionVector,
    /// Timestamp of the most recent local application, if any.
    pub latest_update: Option<SimTime>,
}

impl SnapshotView<'_> {
    /// Upgrades to an owned [`Snapshot`] (clones the version vector).
    pub fn to_owned(&self) -> Snapshot {
        Snapshot {
            object: self.object,
            updates: self.updates,
            meta: self.meta,
            version: self.version.clone(),
            latest_update: self.latest_update,
        }
    }
}

/// The replicas of one shard, behind the same read/write API as the whole
/// store.
#[derive(Debug, Clone)]
pub struct StoreShard {
    node: NodeId,
    writer: WriterId,
    replicas: BTreeMap<ObjectId, Replica>,
    /// Next local sequence number per object.
    next_seq: BTreeMap<ObjectId, u64>,
    /// Objects with a pending detection probe: local writes mark their
    /// object dirty, and the protocol layer marks read-triggered probes via
    /// [`StoreShard::mark_dirty`]; the detection layer's batching window
    /// drains the set ([`StoreShard::take_dirty`]) to start one coalesced
    /// round per dirty object. Remote ingests do *not* dirty — only local
    /// triggers start probes (§4.2).
    dirty: BTreeSet<ObjectId>,
}

impl StoreShard {
    /// An empty shard for `node`, writing as `writer`.
    pub fn new(node: NodeId, writer: WriterId) -> Self {
        StoreShard {
            node,
            writer,
            replicas: BTreeMap::new(),
            next_seq: BTreeMap::new(),
            dirty: BTreeSet::new(),
        }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The local writer identity.
    pub fn writer(&self) -> WriterId {
        self.writer
    }

    /// Creates (or returns) the replica of `object`.
    pub fn open(&mut self, object: ObjectId) -> &mut Replica {
        self.replicas.entry(object).or_insert_with(|| Replica::new(object))
    }

    /// Immutable access to a replica.
    pub fn replica(&self, object: ObjectId) -> Result<&Replica> {
        self.replicas.get(&object).ok_or(IdeaError::UnknownObject(object))
    }

    /// Mutable access to a replica.
    pub fn replica_mut(&mut self, object: ObjectId) -> Result<&mut Replica> {
        self.replicas.get_mut(&object).ok_or(IdeaError::UnknownObject(object))
    }

    /// Objects hosted by this shard, in id order (no per-call allocation).
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.replicas.keys().copied()
    }

    /// Number of replicas hosted by this shard.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True when the shard hosts no replica.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Issues a local write: assigns the next sequence number, applies it to
    /// the local replica, marks the object dirty and returns the update for
    /// dissemination.
    pub fn write(
        &mut self,
        object: ObjectId,
        at: SimTime,
        meta_delta: i64,
        payload: UpdatePayload,
    ) -> Update {
        let seq = self.next_seq.entry(object).or_insert(1);
        let update = Update {
            object,
            id: UpdateId { writer: self.writer, seq: *seq },
            at,
            meta_delta,
            payload,
        };
        *seq += 1;
        let replica = self.open(object);
        let outcome = replica.apply(update.clone()).expect("own write applies");
        debug_assert_eq!(outcome, ApplyOutcome::Applied, "local writes are in order");
        self.dirty.insert(object);
        update
    }

    /// Applies a remote update to the local replica. Does not mark the
    /// object dirty — remote traffic never starts local probes (§4.2).
    ///
    /// # Errors
    /// Fails when no replica of the object exists (`open` it first).
    pub fn ingest(&mut self, update: Update) -> Result<ApplyOutcome> {
        let object = update.object;
        let replica = self.replicas.get_mut(&object).ok_or(IdeaError::UnknownObject(object))?;
        replica.apply(update)
    }

    /// Reads the current snapshot of `object` (owned; clones the version).
    ///
    /// # Errors
    /// Fails when no replica of the object exists.
    pub fn read(&self, object: ObjectId) -> Result<Snapshot> {
        self.read_view(object).map(|v| v.to_owned())
    }

    /// Reads the current snapshot of `object` without cloning the version.
    ///
    /// # Errors
    /// Fails when no replica of the object exists.
    pub fn read_view(&self, object: ObjectId) -> Result<SnapshotView<'_>> {
        let r = self.replica(object)?;
        Ok(SnapshotView {
            object,
            updates: r.len(),
            meta: r.meta(),
            version: r.version(),
            latest_update: r.version().latest_update_time(),
        })
    }

    /// Resets the local write sequence to continue after `seq` (used after a
    /// reconciliation re-sequenced this writer's extra updates).
    pub fn resume_writes_after(&mut self, object: ObjectId, seq: u64) {
        self.next_seq.insert(object, seq + 1);
    }

    /// Marks an object dirty without a write (read-triggered probes).
    pub fn mark_dirty(&mut self, object: ObjectId) {
        self.dirty.insert(object);
    }

    /// Drains the dirty-set: the objects marked since the previous drain.
    pub fn take_dirty(&mut self) -> BTreeSet<ObjectId> {
        std::mem::take(&mut self.dirty)
    }

    /// Objects currently marked dirty.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn shard(node: u32) -> StoreShard {
        StoreShard::new(NodeId(node), WriterId(node))
    }

    fn payload() -> UpdatePayload {
        UpdatePayload::Opaque(Bytes::new())
    }

    #[test]
    fn writes_mark_dirty_but_ingests_do_not() {
        let mut a = shard(0);
        let mut b = shard(1);
        a.open(ObjectId(1));
        b.open(ObjectId(1));
        assert_eq!(a.dirty_len(), 0);
        let u = a.write(ObjectId(1), SimTime::from_secs(1), 3, payload());
        assert_eq!(a.dirty_len(), 1);
        assert_eq!(a.take_dirty().into_iter().collect::<Vec<_>>(), vec![ObjectId(1)]);
        assert_eq!(a.dirty_len(), 0, "drain empties the set");

        // Remote traffic never starts local probes: ingest must not dirty.
        assert_eq!(b.ingest(u.clone()).unwrap(), ApplyOutcome::Applied);
        assert_eq!(b.dirty_len(), 0);
        // Explicit marking (read-triggered probes) is idempotent.
        b.mark_dirty(ObjectId(1));
        b.mark_dirty(ObjectId(1));
        assert_eq!(b.dirty_len(), 1);
    }

    #[test]
    fn read_view_borrows_and_upgrades() {
        let mut s = shard(0);
        s.open(ObjectId(1));
        s.write(ObjectId(1), SimTime::from_secs(1), 5, payload());
        let view = s.read_view(ObjectId(1)).unwrap();
        assert_eq!(view.meta, 5);
        assert_eq!(view.updates, 1);
        assert_eq!(view.latest_update, Some(SimTime::from_secs(1)));
        let owned = view.to_owned();
        assert_eq!(owned.meta, view.meta);
        assert_eq!(&owned.version, view.version);
        assert!(matches!(s.read_view(ObjectId(9)), Err(IdeaError::UnknownObject(_))));
    }

    #[test]
    fn len_tracks_replicas() {
        let mut s = shard(0);
        assert!(s.is_empty());
        s.open(ObjectId(1));
        s.open(ObjectId(2));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
