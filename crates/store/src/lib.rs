//! The replicated object store substrate.
//!
//! IDEA "is assumed to work with a general distributed file system that
//! handles the ordinary read/write operations" (§2); this crate is that
//! substrate. Each node holds a [`Replica`] per shared object: an ordered
//! log of applied [`idea_types::Update`]s, the matching
//! [`idea_vv::ExtendedVersionVector`], checkpoints for the rollback path of §4.4.2,
//! and the transfer helpers resolution uses to ship missing updates.
//!
//! [`ShardedStore`] bundles one node's replicas behind the read/write API
//! the applications call, partitioned by `ObjectId` hash into independent
//! [`StoreShard`]s so disjoint objects never contend; [`NodeStore`] names
//! the single-shard configuration. IDEA sits on top, consulted on writes
//! and reads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replica;
pub mod shard;
pub mod store;

pub use replica::{ApplyOutcome, Checkpoint, Replica};
pub use shard::{Snapshot, SnapshotView, StoreShard};
pub use store::{NodeStore, ShardedStore};
