//! Exhaustive equivalence check of the allocation-free merge-walk.
//!
//! `last_consistent_with` used to materialise and sort both event lists and
//! take the longest common prefix; it is now a two-pass merge-walk over the
//! per-writer histories. This test enumerates every two-writer history pair
//! with up to two updates per writer and timestamps in a small domain —
//! including non-monotone issue times — and asserts the walk agrees with
//! the sorted-list reference computation on all of them.

use idea_types::{SimTime, WriterId};
use idea_vv::ExtendedVersionVector;

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn build(h0: &[u64], h1: &[u64]) -> ExtendedVersionVector {
    let mut v = ExtendedVersionVector::new();
    for (i, &at) in h0.iter().enumerate() {
        v.record(WriterId(0), i as u64 + 1, t(at), 1);
    }
    for (i, &at) in h1.iter().enumerate() {
        v.record(WriterId(1), i as u64 + 1, t(at), 1);
    }
    v
}

/// The pre-merge-walk computation: sorted event lists, longest common prefix.
fn sorted_list_reference(a: &ExtendedVersionVector, b: &ExtendedVersionVector) -> SimTime {
    let ea = a.events();
    let eb = b.events();
    let mut last = SimTime::ZERO;
    for (x, y) in ea.iter().zip(eb.iter()) {
        if x == y {
            last = x.0;
        } else {
            break;
        }
    }
    last
}

#[test]
fn merge_walk_agrees_with_sorted_lists_on_all_small_cases() {
    let histories: Vec<Vec<u64>> = {
        let mut out = vec![vec![]];
        for a in 1..=3u64 {
            out.push(vec![a]);
            for b in 1..=3 {
                out.push(vec![a, b]);
            }
        }
        out
    };
    let mut checked = 0u64;
    for a0 in &histories {
        for a1 in &histories {
            for b0 in &histories {
                for b1 in &histories {
                    let a = build(a0, a1);
                    let b = build(b0, b1);
                    let got = a.last_consistent_with(&b);
                    let want = sorted_list_reference(&a, &b);
                    assert_eq!(got, want, "a0={a0:?} a1={a1:?} b0={b0:?} b1={b1:?}");
                    checked += 1;
                }
            }
        }
    }
    assert_eq!(checked, 13u64.pow(4));
}
