//! Version vectors for the IDEA reproduction.
//!
//! Inconsistency in IDEA is "detected through exchanging version vectors
//! among replicas" (§4.3, after Parker et al. 1983). This crate provides:
//!
//! * [`VersionVector`] — the classic per-writer counter map with its partial
//!   order ([`VvOrdering`]) and merge;
//! * [`ExtendedVersionVector`] — the paper's extension (§4.4.1, Figure 5):
//!   per-update timestamps, a critical-metadata value, and computation of the
//!   TACT `<numerical error, order error, staleness>` triple against a chosen
//!   *reference consistent state*;
//! * [`VvSummary`] / [`VvDelta`] — compact wire forms (counters + metadata +
//!   bounded/exact per-writer timestamp suffixes) so detection traffic never
//!   ships full update histories.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classic;
pub mod extended;
pub mod wire;

pub use classic::{VersionVector, VvOrdering};
pub use extended::ExtendedVersionVector;
pub use wire::{VvDelta, VvSummary, WriterSuffix};
