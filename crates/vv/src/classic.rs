//! Classic version vectors (Parker et al., IEEE TSE 1983).
//!
//! A version vector "tracks the number of times a file is updated by a
//! certain user and uses that to detect conflict" (§4.3). Two replicas are
//! inconsistent iff their vectors differ; two vectors are *comparable* iff
//! one dominates the other, e.g. `(A:5, B:3)` is not comparable with
//! `(A:3, B:6)` (§4.5.1).

use idea_types::WriterId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Outcome of comparing two version vectors under the domination order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VvOrdering {
    /// Identical counters: the replicas are consistent.
    Equal,
    /// `self` is dominated: every counter ≤ the other's, at least one <.
    Less,
    /// `self` dominates: every counter ≥ the other's, at least one >.
    Greater,
    /// Neither dominates: the replicas conflict ("not comparable").
    Concurrent,
}

impl VvOrdering {
    /// True for `Less`, `Greater` or `Equal` (the paper's "comparable").
    pub fn is_comparable(self) -> bool {
        !matches!(self, VvOrdering::Concurrent)
    }
}

/// A classic version vector: one update counter per writer.
///
/// Writers absent from the map implicitly have counter 0, so vectors over
/// different writer sets compare correctly.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VersionVector {
    counters: BTreeMap<WriterId, u64>,
}

impl VersionVector {
    /// The empty vector (all counters zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vector from `(writer, count)` pairs; zero counts are elided.
    pub fn from_pairs<I: IntoIterator<Item = (WriterId, u64)>>(pairs: I) -> Self {
        let mut vv = VersionVector::new();
        for (w, c) in pairs {
            if c > 0 {
                vv.counters.insert(w, c);
            }
        }
        vv
    }

    /// The counter for `writer` (zero if absent).
    #[inline]
    pub fn get(&self, writer: WriterId) -> u64 {
        self.counters.get(&writer).copied().unwrap_or(0)
    }

    /// Increments `writer`'s counter and returns the new value.
    pub fn increment(&mut self, writer: WriterId) -> u64 {
        let c = self.counters.entry(writer).or_insert(0);
        *c += 1;
        *c
    }

    /// Sets `writer`'s counter to `max(current, seq)` — used when observing a
    /// writer's `seq`-th update out of order.
    pub fn observe(&mut self, writer: WriterId, seq: u64) {
        if seq == 0 {
            return;
        }
        let c = self.counters.entry(writer).or_insert(0);
        *c = (*c).max(seq);
    }

    /// Total updates across all writers.
    pub fn total(&self) -> u64 {
        self.counters.values().sum()
    }

    /// Number of writers with a non-zero counter.
    pub fn writers(&self) -> usize {
        self.counters.len()
    }

    /// Iterates `(writer, count)` pairs in writer order.
    pub fn iter(&self) -> impl Iterator<Item = (WriterId, u64)> + '_ {
        self.counters.iter().map(|(w, c)| (*w, *c))
    }

    /// Compares under the domination partial order.
    pub fn compare(&self, other: &VersionVector) -> VvOrdering {
        let mut less = false;
        let mut greater = false;
        // Union of writer keys; BTreeMap keeps this deterministic.
        let mut keys: Vec<WriterId> = self.counters.keys().copied().collect();
        for k in other.counters.keys() {
            if !self.counters.contains_key(k) {
                keys.push(*k);
            }
        }
        for k in keys {
            let a = self.get(k);
            let b = other.get(k);
            if a < b {
                less = true;
            } else if a > b {
                greater = true;
            }
        }
        match (less, greater) {
            (false, false) => VvOrdering::Equal,
            (true, false) => VvOrdering::Less,
            (false, true) => VvOrdering::Greater,
            (true, true) => VvOrdering::Concurrent,
        }
    }

    /// True when `self` dominates or equals `other`.
    pub fn dominates(&self, other: &VersionVector) -> bool {
        matches!(self.compare(other), VvOrdering::Equal | VvOrdering::Greater)
    }

    /// Component-wise maximum (the join of the domination lattice).
    pub fn merge(&mut self, other: &VersionVector) {
        for (w, c) in &other.counters {
            let e = self.counters.entry(*w).or_insert(0);
            *e = (*e).max(*c);
        }
    }

    /// Returns the merged copy without mutating `self`.
    pub fn merged(&self, other: &VersionVector) -> VersionVector {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Updates `other` has that `self` misses: `Σ max(0, other_w − self_w)`.
    pub fn missing_from(&self, other: &VersionVector) -> u64 {
        let mut sum = 0;
        for (w, c) in &other.counters {
            sum += c.saturating_sub(self.get(*w));
        }
        sum
    }

    /// The per-writer overrides that turn `base` into `self`: one
    /// `(writer, count)` entry per writer whose counter differs, drawn from
    /// `self` (explicit zeros where `base` holds a writer `self` lacks —
    /// the invalidated-writer case). `base.with_overrides(diff)` round-trips
    /// back to `self`.
    pub fn diff_from(&self, base: &VersionVector) -> Vec<(WriterId, u64)> {
        let mut diffs = Vec::new();
        for (w, c) in &self.counters {
            if base.get(*w) != *c {
                diffs.push((*w, *c));
            }
        }
        for w in base.counters.keys() {
            if self.get(*w) == 0 {
                diffs.push((*w, 0));
            }
        }
        diffs.sort_unstable_by_key(|&(w, _)| w);
        diffs
    }

    /// Applies per-writer overrides on top of `self`: listed writers take
    /// the override value verbatim (zero removes the entry, keeping the
    /// vector zero-elided), unlisted writers keep their counter. The
    /// reconstruction dual of [`VersionVector::diff_from`].
    pub fn with_overrides(&self, overrides: &[(WriterId, u64)]) -> VersionVector {
        let mut out = self.clone();
        for &(w, c) in overrides {
            if c == 0 {
                out.counters.remove(&w);
            } else {
                out.counters.insert(w, c);
            }
        }
        out
    }
}

impl fmt::Display for VersionVector {
    /// Paper-style rendering: `(w0:3 w1:5)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (w, c)) in self.counters.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{w}:{c}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<(WriterId, u64)> for VersionVector {
    fn from_iter<I: IntoIterator<Item = (WriterId, u64)>>(iter: I) -> Self {
        VersionVector::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vv(pairs: &[(u32, u64)]) -> VersionVector {
        VersionVector::from_pairs(pairs.iter().map(|&(w, c)| (WriterId(w), c)))
    }

    #[test]
    fn empty_vectors_are_equal() {
        assert_eq!(VersionVector::new().compare(&VersionVector::new()), VvOrdering::Equal);
    }

    #[test]
    fn paper_example_is_concurrent() {
        // (A:5, B:3) is not comparable with (A:3, B:6) — §4.5.1.
        let a = vv(&[(0, 5), (1, 3)]);
        let b = vv(&[(0, 3), (1, 6)]);
        assert_eq!(a.compare(&b), VvOrdering::Concurrent);
        assert!(!a.compare(&b).is_comparable());
    }

    #[test]
    fn domination_orders() {
        // (A:3 B:5) is earlier than (A:4 B:7) — §4.3 example.
        let older = vv(&[(0, 3), (1, 5)]);
        let newer = vv(&[(0, 4), (1, 7)]);
        assert_eq!(older.compare(&newer), VvOrdering::Less);
        assert_eq!(newer.compare(&older), VvOrdering::Greater);
        assert!(newer.dominates(&older));
        assert!(!older.dominates(&newer));
    }

    #[test]
    fn absent_writers_count_as_zero() {
        let a = vv(&[(0, 1)]);
        let b = vv(&[(1, 1)]);
        assert_eq!(a.compare(&b), VvOrdering::Concurrent);
        let c = vv(&[]);
        assert_eq!(c.compare(&a), VvOrdering::Less);
    }

    #[test]
    fn increment_and_observe() {
        let mut v = VersionVector::new();
        assert_eq!(v.increment(WriterId(0)), 1);
        assert_eq!(v.increment(WriterId(0)), 2);
        v.observe(WriterId(1), 5);
        assert_eq!(v.get(WriterId(1)), 5);
        v.observe(WriterId(1), 3); // observing an older seq is a no-op
        assert_eq!(v.get(WriterId(1)), 5);
        v.observe(WriterId(2), 0); // zero is elided
        assert_eq!(v.get(WriterId(2)), 0);
        assert_eq!(v.total(), 7);
        assert_eq!(v.writers(), 2);
    }

    #[test]
    fn merge_takes_component_max() {
        let mut a = vv(&[(0, 5), (1, 3)]);
        let b = vv(&[(0, 3), (1, 6), (2, 1)]);
        a.merge(&b);
        assert_eq!(a, vv(&[(0, 5), (1, 6), (2, 1)]));
    }

    #[test]
    fn missing_from_counts_gap() {
        let a = vv(&[(0, 2), (1, 1)]);
        let r = vv(&[(0, 3), (1, 1), (2, 2)]);
        assert_eq!(a.missing_from(&r), 3); // one from w0, two from w2
        assert_eq!(r.missing_from(&a), 0);
    }

    #[test]
    fn display_matches_paper_style() {
        let v = vv(&[(0, 3), (1, 5)]);
        assert_eq!(v.to_string(), "(w0:3 w1:5)");
        assert_eq!(VersionVector::new().to_string(), "()");
    }

    #[test]
    fn diff_from_lists_only_changed_writers_with_explicit_zeros() {
        let reference = vv(&[(0, 3), (2, 1)]);
        let base = vv(&[(0, 3), (1, 2)]);
        // w0 unchanged, w1 invalidated down to zero, w2 newly sanctioned.
        assert_eq!(reference.diff_from(&base), vec![(WriterId(1), 0), (WriterId(2), 1)]);
        assert_eq!(reference.diff_from(&reference), vec![]);
    }

    #[test]
    fn with_overrides_round_trips_and_stays_zero_elided() {
        let reference = vv(&[(0, 3), (2, 1)]);
        let base = vv(&[(0, 3), (1, 2)]);
        let rebuilt = base.with_overrides(&reference.diff_from(&base));
        assert_eq!(rebuilt, reference);
        // The zero override removed w1 entirely: same writer set, not a
        // zero-valued entry.
        assert_eq!(rebuilt.writers(), 2);
    }

    fn arb_vv() -> impl Strategy<Value = VersionVector> {
        prop::collection::btree_map(0u32..6, 0u64..8, 0..6)
            .prop_map(|m| VersionVector::from_pairs(m.into_iter().map(|(w, c)| (WriterId(w), c))))
    }

    proptest! {
        #[test]
        fn compare_is_reflexive(v in arb_vv()) {
            prop_assert_eq!(v.compare(&v), VvOrdering::Equal);
        }

        #[test]
        fn compare_is_antisymmetric(a in arb_vv(), b in arb_vv()) {
            let ab = a.compare(&b);
            let ba = b.compare(&a);
            let expected = match ab {
                VvOrdering::Equal => VvOrdering::Equal,
                VvOrdering::Less => VvOrdering::Greater,
                VvOrdering::Greater => VvOrdering::Less,
                VvOrdering::Concurrent => VvOrdering::Concurrent,
            };
            prop_assert_eq!(ba, expected);
        }

        #[test]
        fn merge_is_commutative(a in arb_vv(), b in arb_vv()) {
            prop_assert_eq!(a.merged(&b), b.merged(&a));
        }

        #[test]
        fn merge_is_associative(a in arb_vv(), b in arb_vv(), c in arb_vv()) {
            prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
        }

        #[test]
        fn merge_is_idempotent(a in arb_vv()) {
            prop_assert_eq!(a.merged(&a), a.clone());
        }

        #[test]
        fn merge_dominates_both(a in arb_vv(), b in arb_vv()) {
            let m = a.merged(&b);
            prop_assert!(m.dominates(&a));
            prop_assert!(m.dominates(&b));
        }

        #[test]
        fn equal_vectors_have_no_missing(a in arb_vv()) {
            prop_assert_eq!(a.missing_from(&a), 0);
        }

        #[test]
        fn missing_from_merge_bound(a in arb_vv(), b in arb_vv()) {
            let m = a.merged(&b);
            // a misses from the merge exactly what it misses from b.
            prop_assert_eq!(a.missing_from(&m), a.missing_from(&b));
        }

        /// Overrides reconstruct exactly: `base.with_overrides(a.diff_from(base)) == a`
        /// for arbitrary vectors, and an empty diff means equality.
        #[test]
        fn diff_override_round_trips(a in arb_vv(), base in arb_vv()) {
            let diff = a.diff_from(&base);
            prop_assert_eq!(base.with_overrides(&diff), a.clone());
            prop_assert_eq!(a.diff_from(&base).is_empty(), a == base);
        }
    }
}
