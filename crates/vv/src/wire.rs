//! Compact wire forms of the extended version vector.
//!
//! Detection traffic used to ship the full [`ExtendedVersionVector`] — a
//! per-writer timestamp *history* whose size grows with the total number of
//! updates ever applied, not with how far two replicas have diverged. The
//! TACT observation (Yu & Vahdat) is that conit error bounds need only
//! compact per-writer counters, and Bayou's anti-entropy ships only the
//! per-writer suffixes a peer is missing. These two forms apply that here:
//!
//! * [`VvSummary`] — counters + metadata + newest-update time + a bounded
//!   per-writer timestamp **tail**. Self-contained: a receiver that holds
//!   its own full history can compute the exact TACT triple against the
//!   summarised replica as long as the divergence per writer fits in the
//!   tail; beyond the tail the unknown events are conservatively treated as
//!   maximally stale (the level estimate can only drop, never inflate).
//! * [`VvDelta`] — counters + metadata + newest-update time + the **exact**
//!   per-writer suffixes beyond a baseline the receiver advertised
//!   ([`ExtendedVersionVector::suffix_since`]). A receiver holding the
//!   baseline history reconstructs the sender's full vector losslessly
//!   ([`ExtendedVersionVector::reconstruct`]) or converges onto it
//!   ([`ExtendedVersionVector::apply_delta`], the wire-form `adopt`).
//!
//! Both forms cost `O(writers + suffix)` bytes instead of `O(history)`.

use crate::classic::VersionVector;
use crate::extended::{note_divergence, Divergence, ExtendedVersionVector};
use idea_types::{ErrorTriple, SimDuration, SimTime, UpdateId, WriterId};
use serde::{Deserialize, Serialize};

/// Timestamps of one writer's newest updates: the `start_seq`-th update
/// onwards (1-based, contiguous through the writer's current count).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriterSuffix {
    /// The writer the suffix belongs to.
    pub writer: WriterId,
    /// Sequence number of the first timestamp in `times` (1-based).
    pub start_seq: u64,
    /// Issue timestamps of updates `start_seq..start_seq + times.len()`.
    pub times: Vec<SimTime>,
}

impl WriterSuffix {
    /// Approximate serialized size: writer id + start_seq header plus one
    /// timestamp per carried update.
    fn wire_bytes(&self) -> usize {
        12 + 8 * self.times.len()
    }
}

/// Compact, self-contained wire form of an extended version vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VvSummary {
    /// Per-writer update counters (the classic vector).
    pub counters: VersionVector,
    /// Critical-metadata value.
    pub meta: i64,
    /// Timestamp of the newest recorded update (`None` when empty).
    pub latest: Option<SimTime>,
    /// Bounded per-writer timestamp tails (newest updates only), sorted by
    /// writer.
    pub tail: Vec<WriterSuffix>,
}

/// Exact per-writer suffixes beyond a baseline counter vector the receiver
/// advertised.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VvDelta {
    /// The sender's full per-writer counters.
    pub counters: VersionVector,
    /// The sender's critical-metadata value.
    pub meta: i64,
    /// Timestamp of the sender's newest recorded update.
    pub latest: Option<SimTime>,
    /// Per-writer timestamps beyond the baseline, sorted by writer.
    pub suffixes: Vec<WriterSuffix>,
}

/// Shared wire-size model: meta + latest header, per-writer counter
/// entries, then the carried suffixes.
fn form_bytes(counters: &VersionVector, suffixes: &[WriterSuffix]) -> usize {
    16 + 12 * counters.writers() + suffixes.iter().map(WriterSuffix::wire_bytes).sum::<usize>()
}

fn suffix_for(suffixes: &[WriterSuffix], writer: WriterId) -> Option<&WriterSuffix> {
    suffixes.binary_search_by_key(&writer, |s| s.writer).ok().map(|i| &suffixes[i])
}

impl VvSummary {
    /// Approximate serialized size in bytes.
    pub fn wire_bytes(&self) -> usize {
        form_bytes(&self.counters, &self.tail)
    }

    /// Timestamp the summarised replica recorded for `(writer, seq)`, when
    /// the tail covers it.
    fn time_of(&self, writer: WriterId, seq: u64) -> Option<SimTime> {
        let s = suffix_for(&self.tail, writer)?;
        if seq < s.start_seq {
            return None;
        }
        s.times.get((seq - s.start_seq) as usize).copied()
    }

    /// Triple of the summarised replica against `reference` (a full vector)
    /// — the mirror direction of
    /// [`ExtendedVersionVector::triple_against_summary`].
    pub fn triple_against(&self, reference: &ExtendedVersionVector) -> ErrorTriple {
        let (numerical, order) = scalar_errors(reference, self);
        let staleness = match reference.latest_update_time() {
            Some(latest) => latest.saturating_since(reference.last_consistent_with_summary(self)),
            None => SimDuration::ZERO,
        };
        ErrorTriple::new(numerical, order, staleness)
    }
}

impl VvDelta {
    /// Approximate serialized size in bytes.
    pub fn wire_bytes(&self) -> usize {
        form_bytes(&self.counters, &self.suffixes)
    }
}

/// Numerical and order error between a full vector and a summarised one
/// (both are symmetric in direction).
fn scalar_errors(evv: &ExtendedVersionVector, summary: &VvSummary) -> (f64, f64) {
    let numerical = (summary.meta - evv.meta()).abs() as f64;
    let order = evv.counters().missing_from(&summary.counters)
        + summary.counters.missing_from(evv.counters());
    (numerical, order as f64)
}

impl ExtendedVersionVector {
    /// Builds the compact wire summary, carrying at most `tail_len`
    /// timestamps per writer (the newest ones).
    pub fn summary(&self, tail_len: usize) -> VvSummary {
        let mut tail = Vec::new();
        for (w, h) in self.raw_histories() {
            if h.times.is_empty() || tail_len == 0 {
                continue;
            }
            let skip = h.times.len().saturating_sub(tail_len);
            tail.push(WriterSuffix {
                writer: *w,
                start_seq: skip as u64 + 1,
                times: h.times[skip..].to_vec(),
            });
        }
        VvSummary {
            counters: self.counters().clone(),
            meta: self.meta(),
            latest: self.latest_update_time(),
            tail,
        }
    }

    /// The exact per-writer suffixes a peer holding `have` is missing —
    /// Bayou-style anti-entropy for the vector itself.
    ///
    /// Each suffix overlaps the baseline by one **anchor** timestamp (the
    /// newest update the receiver claims to share). Resolution
    /// re-sequencing rewrites a contiguous suffix of a writer's updates, so
    /// if the receiver's copy of any shared update was superseded, its copy
    /// of the anchor was too — shipping the sender's anchor lets
    /// [`ExtendedVersionVector::reconstruct`] carry the authoritative
    /// timestamp and the triple walk detect the divergence, instead of the
    /// receiver silently vouching its stale copy.
    pub fn suffix_since(&self, have: &VersionVector) -> VvDelta {
        let mut suffixes = Vec::new();
        for (w, h) in self.raw_histories() {
            let base = (have.get(*w) as usize).min(h.times.len());
            if base < h.times.len() {
                let start = base.saturating_sub(1);
                suffixes.push(WriterSuffix {
                    writer: *w,
                    start_seq: start as u64 + 1,
                    times: h.times[start..].to_vec(),
                });
            }
        }
        VvDelta {
            counters: self.counters().clone(),
            meta: self.meta(),
            latest: self.latest_update_time(),
            suffixes,
        }
    }

    /// Rebuilds the sender's full vector from a delta whose baseline this
    /// vector covers: timestamps below each suffix come from the local
    /// history (identical updates carry identical issue times), the rest
    /// from the delta. Positions the local history cannot vouch for (it was
    /// truncated by a reconciliation after the baseline was advertised) are
    /// filled with [`SimTime::ZERO`], which makes the later triple
    /// computation conservatively treat them as immediately-divergent.
    pub fn reconstruct(&self, delta: &VvDelta) -> ExtendedVersionVector {
        let parts = delta.counters.iter().map(|(w, c)| {
            let c = c as usize;
            let local = self.writer_times(w);
            let sfx = suffix_for(&delta.suffixes, w);
            let prefix_end = sfx.map_or(c, |s| (s.start_seq - 1) as usize).min(c);
            let mut times = Vec::with_capacity(c);
            for s in 0..prefix_end {
                times.push(local.get(s).copied().unwrap_or(SimTime::ZERO));
            }
            if let Some(sfx) = sfx {
                for t in &sfx.times {
                    if times.len() < c {
                        times.push(*t);
                    }
                }
            }
            // Defensive: a malformed delta (suffix shorter than the counter
            // claims) must not produce an inconsistent vector.
            times.resize(c, SimTime::ZERO);
            (w, times)
        });
        ExtendedVersionVector::from_raw(parts, delta.meta)
    }

    /// Converges this vector onto the delta's sender — the wire-form
    /// [`ExtendedVersionVector::adopt`]. Returns the updates absorbed.
    pub fn apply_delta(&mut self, delta: &VvDelta) -> u64 {
        let absorbed = self.counters().missing_from(&delta.counters);
        *self = self.reconstruct(delta);
        absorbed
    }

    /// The last-consistent point against a summarised replica: the
    /// merge-walk of [`ExtendedVersionVector::last_consistent_with`] with
    /// the remote timestamps drawn from the tail. Remote events in the
    /// common per-writer range but below the tail are assumed to match the
    /// local copy (same update id ⇒ same issue time); remote events *beyond*
    /// the local count whose timestamp the tail does not cover are treated
    /// as divergent at time zero — staleness saturates rather than being
    /// under-reported.
    pub fn last_consistent_with_summary(&self, summary: &VvSummary) -> SimTime {
        let mut d: Divergence = None;
        let note = note_divergence;
        for (w, cr) in summary.counters.iter() {
            let local = self.writer_times(w);
            let m = local.len().min(cr as usize);
            // Timestamp mismatches detectable inside the tail's coverage.
            for (s, t) in local.iter().enumerate().take(m) {
                if let Some(rt) = summary.time_of(w, s as u64 + 1) {
                    if rt != *t {
                        note(&mut d, *t, w, s as u64 + 1);
                        note(&mut d, rt, w, s as u64 + 1);
                    }
                }
            }
            // Remote-only suffix: known times from the tail, unknown ones
            // pinned to time zero (conservative).
            for seq in (m as u64 + 1)..=cr {
                let rt = summary.time_of(w, seq).unwrap_or(SimTime::ZERO);
                note(&mut d, rt, w, seq);
            }
        }
        // Local-only suffixes (writers or updates the summary lacks).
        for (w, h) in self.raw_histories() {
            let cr = summary.counters.get(*w) as usize;
            for (s, t) in h.times.iter().enumerate().skip(cr.min(h.times.len())) {
                note(&mut d, *t, *w, s as u64 + 1);
            }
        }
        let Some(d) = d else {
            return self.max_event_time().unwrap_or(SimTime::ZERO);
        };
        let mut last = SimTime::ZERO;
        for (w, cr) in summary.counters.iter() {
            let local = self.writer_times(w);
            let m = local.len().min(cr as usize);
            for (s, t) in local.iter().enumerate().take(m) {
                let agreed = summary.time_of(w, s as u64 + 1).is_none_or(|rt| rt == *t);
                if agreed && (*t, UpdateId { writer: w, seq: s as u64 + 1 }) < d {
                    last = last.max(*t);
                }
            }
        }
        last
    }

    /// Triple of `self` against a summarised replica as the reference —
    /// exact whenever the per-writer divergence fits the summary's tail.
    pub fn triple_against_summary(&self, reference: &VvSummary) -> ErrorTriple {
        let (numerical, order) = scalar_errors(self, reference);
        let staleness = match reference.latest {
            Some(latest) => latest.saturating_since(self.last_consistent_with_summary(reference)),
            None => SimDuration::ZERO,
        };
        ErrorTriple::new(numerical, order, staleness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn evv(updates: &[(u32, u64, i64)]) -> ExtendedVersionVector {
        let mut v = ExtendedVersionVector::new();
        for &(w, at, delta) in updates {
            let writer = WriterId(w);
            let next = v.count(writer) + 1;
            v.record(writer, next, t(at), delta);
        }
        v
    }

    #[test]
    fn summary_preserves_scalars() {
        let a = evv(&[(0, 1, 2), (1, 2, 3), (0, 4, 1)]);
        let s = a.summary(8);
        assert_eq!(&s.counters, a.counters());
        assert_eq!(s.meta, a.meta());
        assert_eq!(s.latest, a.latest_update_time());
        assert_eq!(s.tail.len(), 2);
    }

    #[test]
    fn summary_tail_is_bounded() {
        let mut a = ExtendedVersionVector::new();
        for s in 1..=20 {
            a.record(WriterId(0), s, t(s), 1);
        }
        let s = a.summary(4);
        assert_eq!(s.tail.len(), 1);
        assert_eq!(s.tail[0].start_seq, 17);
        assert_eq!(s.tail[0].times, vec![t(17), t(18), t(19), t(20)]);
        assert!(s.wire_bytes() < a.summary(100).wire_bytes());
    }

    #[test]
    fn covering_summary_triple_is_exact() {
        let a = evv(&[(0, 1, 2), (0, 2, 1), (1, 3, 5)]);
        let b = evv(&[(0, 1, 2), (1, 2, 4)]);
        let s = b.summary(16);
        assert_eq!(a.triple_against_summary(&s), a.triple_against(&b));
        assert_eq!(s.triple_against(&a), b.triple_against(&a));
    }

    #[test]
    fn truncated_tail_saturates_staleness() {
        // Remote is 20 updates ahead with a 2-entry tail: the unknown
        // events pin the divergence point to time zero, so staleness spans
        // the whole reference history rather than being under-reported.
        let mut remote = ExtendedVersionVector::new();
        for s in 1..=20 {
            remote.record(WriterId(0), s, t(s), 1);
        }
        let local = evv(&[(0, 1, 1)]);
        let exact = local.triple_against(&remote);
        let compact = local.triple_against_summary(&remote.summary(2));
        assert_eq!(compact.numerical, exact.numerical);
        assert_eq!(compact.order, exact.order);
        assert!(compact.staleness >= exact.staleness);
    }

    #[test]
    fn suffix_since_ships_only_the_gap_plus_anchor() {
        let b = evv(&[(0, 1, 1), (0, 2, 1), (1, 3, 2), (0, 4, 1)]);
        let have = VersionVector::from_pairs([(WriterId(0), 2)]);
        let d = b.suffix_since(&have);
        assert_eq!(d.suffixes.len(), 2);
        // Writer 0: the missing seq 3 plus the seq-2 anchor the receiver
        // claims to share.
        let w0 = &d.suffixes[0];
        assert_eq!((w0.writer, w0.start_seq), (WriterId(0), 2));
        assert_eq!(w0.times, vec![t(2), t(4)]);
        let w1 = &d.suffixes[1];
        assert_eq!((w1.writer, w1.start_seq), (WriterId(1), 1));
        assert!(d.wire_bytes() < b.summary(100).wire_bytes());
    }

    #[test]
    fn anchor_exposes_re_sequenced_baseline_updates() {
        // Both replicas share (w0, seq 1). The receiver `a` still holds an
        // invalidated copy of (w0, seq 2) issued at t=2; after a
        // resolution, the writer re-issued seq 2 at t=9 and appended seq 3
        // — the sender `b` holds the re-issued versions. The old
        // full-vector wire detected the timestamp mismatch at seq 2; the
        // anchor keeps that detection: the reconstructed vector carries the
        // sender's authoritative t=9, so the triple walk sees the
        // divergence at seq 2 instead of vouching a's stale copy.
        let a = evv(&[(0, 1, 1), (0, 2, 2)]);
        let mut b = evv(&[(0, 1, 1)]);
        b.record(WriterId(0), 2, t(9), 1);
        b.record(WriterId(0), 3, t(10), 1);

        let delta = b.suffix_since(a.counters());
        let rebuilt = a.reconstruct(&delta);
        assert_eq!(rebuilt, b, "anchor must carry the sender's re-issued timestamp");
        assert_eq!(
            a.last_consistent_with(&rebuilt),
            t(1),
            "divergence must anchor at the shared prefix, not the stale copy"
        );
    }

    #[test]
    fn reconstruct_is_lossless_over_a_shared_baseline() {
        let base = evv(&[(0, 1, 1), (1, 2, 2)]);
        let mut b = base.clone();
        b.record(WriterId(0), 2, t(5), 3);
        b.record(WriterId(2), 1, t(6), 1);
        let d = b.suffix_since(base.counters());
        assert_eq!(base.reconstruct(&d), b);
    }

    #[test]
    fn reconstruct_drops_unsanctioned_local_extras() {
        // The sender's counters are authoritative: local updates beyond
        // them disappear, mirroring `adopt`.
        let b = evv(&[(0, 1, 1)]);
        let a = evv(&[(0, 1, 1), (0, 2, 2), (1, 3, 3)]);
        let d = b.suffix_since(a.counters());
        let rebuilt = a.reconstruct(&d);
        assert_eq!(rebuilt, b);
    }

    #[test]
    fn malformed_delta_still_produces_consistent_counters() {
        let a = evv(&[(0, 1, 1)]);
        let delta = VvDelta {
            counters: VersionVector::from_pairs([(WriterId(0), 3)]),
            meta: 9,
            latest: Some(t(9)),
            suffixes: vec![], // claims 3 updates, ships no timestamps
        };
        let rebuilt = a.reconstruct(&delta);
        assert_eq!(rebuilt.count(WriterId(0)), 3);
        assert_eq!(rebuilt.meta(), 9);
    }

    /// A divergent pair drawn from global per-writer update streams: every
    /// `(writer, seq)` has one fixed issue timestamp (as real updates do),
    /// and each replica has applied an arbitrary per-writer prefix of each
    /// stream — the general shape of divergence under IDEA's per-writer
    /// FIFO application.
    fn arb_divergent_pair() -> impl Strategy<Value = (ExtendedVersionVector, ExtendedVersionVector)>
    {
        let streams =
            prop::collection::vec(prop::collection::vec((0u64..50, -5i64..5), 0..12), 4..5);
        let take_a = prop::collection::vec(0usize..13, 4..5);
        let take_b = prop::collection::vec(0usize..13, 4..5);
        (streams, take_a, take_b).prop_map(|(streams, take_a, take_b)| {
            let mut a = ExtendedVersionVector::new();
            let mut b = ExtendedVersionVector::new();
            for (w, stream) in streams.iter().enumerate() {
                let writer = WriterId(w as u32);
                for (i, &(at, delta)) in stream.iter().enumerate() {
                    if i < take_a[w] {
                        a.record(writer, i as u64 + 1, t(at), delta);
                    }
                    if i < take_b[w] {
                        b.record(writer, i as u64 + 1, t(at), delta);
                    }
                }
            }
            (a, b)
        })
    }

    /// Fully independent histories — same-id updates may carry *different*
    /// timestamps (the post-invalidation re-sequencing corner).
    fn arb_evv() -> impl Strategy<Value = ExtendedVersionVector> {
        prop::collection::vec((0u32..4, 0u64..50, -5i64..5), 0..24).prop_map(|ops| {
            let mut v = ExtendedVersionVector::new();
            for (w, at, delta) in ops {
                let writer = WriterId(w);
                v.record(writer, v.count(writer) + 1, t(at), delta);
            }
            v
        })
    }

    proptest! {
        /// `apply_delta(suffix_since(have))` must be equivalent to adopting
        /// the full reference: same counters, same metadata, same triples.
        #[test]
        fn apply_delta_equals_adopt((a, b) in arb_divergent_pair(), probe in 0u64..4) {
            let mut via_delta = a.clone();
            let mut via_adopt = a.clone();
            let delta = b.suffix_since(a.counters());
            let absorbed_delta = via_delta.apply_delta(&delta);
            let absorbed_adopt = via_adopt.adopt(&b);
            prop_assert_eq!(absorbed_delta, absorbed_adopt);
            prop_assert_eq!(via_delta.counters(), via_adopt.counters());
            prop_assert_eq!(via_delta.meta(), via_adopt.meta());
            prop_assert!(via_delta.triple_against(&b).is_zero());
            // Triples against an unrelated third replica agree too.
            let mut third = ExtendedVersionVector::new();
            third.record(WriterId(probe as u32), 1, t(probe), 1);
            prop_assert_eq!(
                via_delta.triple_against(&third),
                via_adopt.triple_against(&third)
            );
        }

        /// Reconstructing a peer from its delta over our own baseline is
        /// lossless when both grew from a shared prefix.
        #[test]
        fn reconstruct_round_trips((a, b) in arb_divergent_pair()) {
            let delta = b.suffix_since(a.counters());
            let rebuilt = a.reconstruct(&delta);
            prop_assert_eq!(&rebuilt, &b);
            prop_assert!(rebuilt.triple_against(&b).is_zero());
        }

        /// With a tail long enough to cover every writer's history the
        /// summary triple is bit-identical to the full computation.
        #[test]
        fn covering_summary_matches_full_triple((a, b) in arb_divergent_pair()) {
            let s = b.summary(64);
            prop_assert_eq!(a.triple_against_summary(&s), a.triple_against(&b));
            prop_assert_eq!(s.triple_against(&a), b.triple_against(&a));
        }

        /// The covering-tail equivalence holds even when same-id updates
        /// carry mismatched timestamps (re-sequencing divergence): the tail
        /// exposes the remote timestamps, so the mismatch is detected at
        /// the same point the full walk detects it.
        #[test]
        fn covering_summary_exact_under_mismatches(a in arb_evv(), b in arb_evv()) {
            let s = b.summary(64);
            prop_assert_eq!(a.triple_against_summary(&s), a.triple_against(&b));
            prop_assert_eq!(s.triple_against(&a), b.triple_against(&a));
        }

        /// A bounded tail never *under*-reports: numerical and order errors
        /// stay exact, staleness can only saturate upwards.
        #[test]
        fn bounded_tail_is_conservative((a, b) in arb_divergent_pair(), tail in 0usize..4) {
            let s = b.summary(tail);
            let exact = a.triple_against(&b);
            let compact = a.triple_against_summary(&s);
            prop_assert_eq!(compact.numerical, exact.numerical);
            prop_assert_eq!(compact.order, exact.order);
            prop_assert!(compact.staleness >= exact.staleness);
        }
    }
}
