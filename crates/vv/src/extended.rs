//! Extended version vectors (§4.4.1, Figure 5 of the paper).
//!
//! IDEA extends the classic vector in three ways:
//!
//! 1. each counted update carries its **timestamp**, e.g. `A:2(1, 2)` means
//!    user A's two updates happened at times 1 and 2;
//! 2. a **critical metadata** value in square brackets (`\[5\]`) summarises the
//!    application effect of the updates (ASCII sum of recent strokes for a
//!    white board, total sale price for ticket booking);
//! 3. a `<numerical error, order error, staleness>` **triple** is attached,
//!    computed against a chosen *reference consistent state*.
//!
//! The worked example of Figure 4 is reproduced verbatim in the tests below.
//!
//! The triple computation is a merge-walk over the per-writer histories —
//! it never materialises or sorts a combined event list, so a pairwise
//! comparison allocates nothing and costs one linear pass. The classic
//! counter view is cached and maintained incrementally by
//! [`ExtendedVersionVector::record`]/[`ExtendedVersionVector::adopt`], so
//! [`ExtendedVersionVector::counters`] is a free borrow. Compact wire forms
//! live in [`crate::wire`].

use crate::classic::{VersionVector, VvOrdering};
use idea_types::{ErrorTriple, SimTime, UpdateId, WriterId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::{self, Write as _};

/// Per-writer update history: timestamps of updates `1..=count`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub(crate) struct WriterHistory {
    /// `times[i]` is the timestamp of the writer's `(i+1)`-th update.
    pub(crate) times: Vec<SimTime>,
}

/// The extended version vector of one replica.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExtendedVersionVector {
    histories: BTreeMap<WriterId, WriterHistory>,
    /// Cumulative critical-metadata value (the `\[5\]` column of Figure 5).
    meta: i64,
    /// Cached classic counter view, maintained incrementally so the hot
    /// detection path never rebuilds it.
    counters: VersionVector,
}

/// The smallest divergent event between two event sets, as a `(time, id)`
/// pair — everything chronologically before it is the common prefix.
pub(crate) type Divergence = Option<(SimTime, UpdateId)>;

/// Tracks the minimum divergent entry seen so far.
#[inline]
pub(crate) fn note_divergence(d: &mut Divergence, t: SimTime, writer: WriterId, seq: u64) {
    let e = (t, UpdateId { writer, seq });
    if d.is_none_or(|cur| e < cur) {
        *d = Some(e);
    }
}

/// Walks the union of two writer maps in writer order, handing `f` the two
/// (possibly empty) time slices of each writer — the merge-walk primitive
/// shared by the triple computations.
fn walk_writer_pairs(
    a: &BTreeMap<WriterId, WriterHistory>,
    b: &BTreeMap<WriterId, WriterHistory>,
    mut f: impl FnMut(WriterId, &[SimTime], &[SimTime]),
) {
    let mut ia = a.iter().peekable();
    let mut ib = b.iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some((wa, ha)), Some((wb, hb))) => match wa.cmp(wb) {
                std::cmp::Ordering::Less => {
                    f(**wa, &ha.times, &[]);
                    ia.next();
                }
                std::cmp::Ordering::Greater => {
                    f(**wb, &[], &hb.times);
                    ib.next();
                }
                std::cmp::Ordering::Equal => {
                    f(**wa, &ha.times, &hb.times);
                    ia.next();
                    ib.next();
                }
            },
            (Some((wa, ha)), None) => {
                f(**wa, &ha.times, &[]);
                ia.next();
            }
            (None, Some((wb, hb))) => {
                f(**wb, &[], &hb.times);
                ib.next();
            }
            (None, None) => break,
        }
    }
}

impl ExtendedVersionVector {
    /// The empty extended vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a vector from raw per-writer histories (the wire-form
    /// reconstruction path).
    pub(crate) fn from_raw(
        parts: impl IntoIterator<Item = (WriterId, Vec<SimTime>)>,
        meta: i64,
    ) -> Self {
        let mut histories = BTreeMap::new();
        let mut counters = VersionVector::new();
        for (w, times) in parts {
            if times.is_empty() {
                continue;
            }
            counters.observe(w, times.len() as u64);
            histories.insert(w, WriterHistory { times });
        }
        ExtendedVersionVector { histories, meta, counters }
    }

    /// Raw per-writer histories (crate-internal: the wire forms read them).
    pub(crate) fn raw_histories(&self) -> &BTreeMap<WriterId, WriterHistory> {
        &self.histories
    }

    /// Timestamps of `writer`'s updates, oldest first (empty when unknown).
    pub(crate) fn writer_times(&self, writer: WriterId) -> &[SimTime] {
        self.histories.get(&writer).map_or(&[], |h| &h.times)
    }

    /// Records the replica applying `writer`'s update with sequence `seq`
    /// (1-based, must be the next in sequence for that writer), issued at
    /// `at`, shifting the metadata value by `meta_delta`.
    ///
    /// # Panics
    /// Panics in debug builds if `seq` is not consecutive; release builds
    /// tolerate replays (`seq <= count`) by ignoring them.
    pub fn record(&mut self, writer: WriterId, seq: u64, at: SimTime, meta_delta: i64) {
        let h = self.histories.entry(writer).or_default();
        let count = h.times.len() as u64;
        if seq <= count {
            // Replay of an already-recorded update: ignore.
            return;
        }
        debug_assert_eq!(seq, count + 1, "update for {writer} skipped seq {count}+1 -> {seq}");
        h.times.push(at);
        self.counters.observe(writer, count + 1);
        self.meta += meta_delta;
    }

    /// The classic counter view of this vector (cached; a free borrow).
    pub fn counters(&self) -> &VersionVector {
        &self.counters
    }

    /// The counter for a single writer.
    pub fn count(&self, writer: WriterId) -> u64 {
        self.counters.get(writer)
    }

    /// Timestamp of `writer`'s `seq`-th update, if recorded.
    pub fn time_of(&self, writer: WriterId, seq: u64) -> Option<SimTime> {
        if seq == 0 {
            return None;
        }
        self.histories.get(&writer)?.times.get(seq as usize - 1).copied()
    }

    /// The critical metadata value.
    pub fn meta(&self) -> i64 {
        self.meta
    }

    /// Total number of recorded updates.
    pub fn total(&self) -> u64 {
        self.counters.total()
    }

    /// Timestamp of the most recent recorded update (`None` when empty).
    pub fn latest_update_time(&self) -> Option<SimTime> {
        self.histories.values().filter_map(|h| h.times.last().copied()).max()
    }

    /// Chronologically largest recorded timestamp — equals
    /// [`ExtendedVersionVector::latest_update_time`] for monotone per-writer
    /// histories, but robust to out-of-order issue times.
    pub(crate) fn max_event_time(&self) -> Option<SimTime> {
        self.histories.values().flat_map(|h| h.times.iter().copied()).max()
    }

    /// Compares the counter views under the domination order.
    pub fn compare(&self, other: &ExtendedVersionVector) -> VvOrdering {
        self.counters.compare(&other.counters)
    }

    /// All recorded update identities with their timestamps, sorted
    /// chronologically (ties broken by update id). Retained for tests and
    /// diagnostics; the triple computation no longer materialises it.
    pub fn events(&self) -> Vec<(SimTime, UpdateId)> {
        let mut out: Vec<(SimTime, UpdateId)> = Vec::with_capacity(self.total() as usize);
        for (w, h) in &self.histories {
            for (i, t) in h.times.iter().enumerate() {
                out.push((*t, UpdateId { writer: *w, seq: i as u64 + 1 }));
            }
        }
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        out
    }

    /// The instant this replica was last consistent with `reference`: the end
    /// of the longest common prefix of the two chronological event lists
    /// (`SimTime::ZERO` when they diverge immediately).
    ///
    /// Computed as a merge-walk: the prefix ends at the chronologically
    /// first event held by only one side (or held by both under different
    /// timestamps), so one linear pass finds that divergence point and a
    /// second finds the newest common event before it — no sort, no
    /// intermediate event list.
    pub fn last_consistent_with(&self, reference: &ExtendedVersionVector) -> SimTime {
        let mut d: Divergence = None;
        walk_writer_pairs(&self.histories, &reference.histories, |w, ta, tb| {
            let m = ta.len().min(tb.len());
            for s in 0..m {
                if ta[s] != tb[s] {
                    note_divergence(&mut d, ta[s], w, s as u64 + 1);
                    note_divergence(&mut d, tb[s], w, s as u64 + 1);
                }
            }
            for (s, t) in ta.iter().enumerate().skip(m) {
                note_divergence(&mut d, *t, w, s as u64 + 1);
            }
            for (s, t) in tb.iter().enumerate().skip(m) {
                note_divergence(&mut d, *t, w, s as u64 + 1);
            }
        });
        let Some(d) = d else {
            // Identical event sets: consistent through the newest event.
            return self.max_event_time().unwrap_or(SimTime::ZERO);
        };
        let mut last = SimTime::ZERO;
        walk_writer_pairs(&self.histories, &reference.histories, |w, ta, tb| {
            let m = ta.len().min(tb.len());
            for s in 0..m {
                if ta[s] == tb[s] && (ta[s], UpdateId { writer: w, seq: s as u64 + 1 }) < d {
                    last = last.max(ta[s]);
                }
            }
        });
        last
    }

    /// Computes the TACT triple of this replica **against a reference
    /// consistent state** (§4.4.1):
    ///
    /// * numerical error — gap between the metadata values;
    /// * order error — updates missed plus extra updates held;
    /// * staleness — most recent update in the reference minus the last
    ///   point this replica was consistent with it.
    pub fn triple_against(&self, reference: &ExtendedVersionVector) -> ErrorTriple {
        let numerical = (reference.meta - self.meta).abs() as f64;

        let missed = self.counters.missing_from(&reference.counters);
        let extra = reference.counters.missing_from(&self.counters);
        let order = (missed + extra) as f64;

        let staleness = match reference.latest_update_time() {
            Some(latest) => {
                let last_ok = self.last_consistent_with(reference);
                latest.saturating_since(last_ok)
            }
            // An empty reference has no update to be stale against.
            None => idea_types::SimDuration::ZERO,
        };

        ErrorTriple::new(numerical, order, staleness)
    }

    /// Absorbs every update the reference has that this replica misses
    /// (per-writer suffixes), adjusting the metadata value by
    /// `meta_of_reference − meta_of_self` so both end identical. Returns the
    /// number of updates absorbed.
    ///
    /// This models the paper's "let the smaller one learn from the larger
    /// one" resolution when vectors are comparable, and the post-reference
    /// reconciliation after a resolution round otherwise. Extra updates this
    /// replica holds that the reference lacks must be handled by the store
    /// (invalidated or re-sequenced) — the vector itself keeps them only if
    /// the reference also has them.
    pub fn adopt(&mut self, reference: &ExtendedVersionVector) -> u64 {
        let absorbed = self.counters.missing_from(&reference.counters);
        self.histories = reference.histories.clone();
        self.counters = reference.counters.clone();
        self.meta = reference.meta;
        absorbed
    }

    /// Renders in the paper's Figure-5 style:
    /// `<A:2(1, 2) B:0> <\[5\]> <num, order, stale>` (triple omitted — it is
    /// relative to a reference, not intrinsic).
    pub fn paper_format(&self) -> String {
        let mut s = String::from("<");
        for (i, (w, h)) in self.histories.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            let _ = write!(s, "{w}:{}", h.times.len());
            if !h.times.is_empty() {
                s.push('(');
                for (j, t) in h.times.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "{}", t.as_secs_f64());
                }
                s.push(')');
            }
        }
        let _ = write!(s, "> <[{}]>", self.meta);
        s
    }
}

impl fmt::Display for ExtendedVersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.paper_format())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_types::SimDuration;
    use proptest::prelude::*;

    const A: WriterId = WriterId(0);
    const B: WriterId = WriterId(1);

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Builds the Figure-4 worked example:
    ///
    /// Replica a: A's updates at times 1 and 2 (meta 5 total).
    /// Replica b (reference): B's update... the paper's concrete numbers:
    /// after comparing, replica a has numerical error 3, order error 3
    /// ("misses one update and has two extra ones"), staleness 2 (last
    /// consistent at time 1, reference's latest at time 3).
    fn figure4() -> (ExtendedVersionVector, ExtendedVersionVector) {
        // Common prefix: B:1 at time 1 (both replicas saw it) — this makes
        // "the last time point when a is consistent" time 1, as in the paper.
        let mut a = ExtendedVersionVector::new();
        let mut b = ExtendedVersionVector::new();
        a.record(B, 1, t(1), 2);
        b.record(B, 1, t(1), 2);
        // Replica a then applies two local updates from A (the "two extra
        // ones"), shifting its meta by +3.
        a.record(A, 1, t(2), 1);
        a.record(A, 2, t(2), 2);
        // Replica b (the reference, higher node id) applies one more update
        // from B at time 3 (the one a "misses"), shifting its meta by +6 so
        // the final metadata gap |b.meta - a.meta| = |8 - 5| = 3.
        b.record(B, 2, t(3), 6);
        (a, b)
    }

    #[test]
    fn figure4_triple_matches_paper() {
        let (a, b) = figure4();
        let triple = a.triple_against(&b);
        assert_eq!(triple.numerical, 3.0, "numerical error");
        assert_eq!(triple.order, 3.0, "order error: 1 missed + 2 extra");
        assert_eq!(triple.staleness, SimDuration::from_secs(2), "staleness: 3 - 1");
    }

    #[test]
    fn reference_sees_mirror_order_error() {
        let (a, b) = figure4();
        let triple_b = b.triple_against(&a);
        // Order error is symmetric (missed and extra swap roles).
        assert_eq!(triple_b.order, 3.0);
        assert_eq!(triple_b.numerical, 3.0);
    }

    #[test]
    fn triple_against_self_is_zero() {
        let (a, _) = figure4();
        assert!(a.triple_against(&a).is_zero());
    }

    #[test]
    fn record_accumulates_meta_and_counts() {
        let mut v = ExtendedVersionVector::new();
        v.record(A, 1, t(1), 10);
        v.record(A, 2, t(2), -4);
        assert_eq!(v.meta(), 6);
        assert_eq!(v.count(A), 2);
        assert_eq!(v.total(), 2);
        assert_eq!(v.time_of(A, 1), Some(t(1)));
        assert_eq!(v.time_of(A, 2), Some(t(2)));
        assert_eq!(v.time_of(A, 3), None);
        assert_eq!(v.time_of(A, 0), None);
        assert_eq!(v.latest_update_time(), Some(t(2)));
    }

    #[test]
    fn replayed_updates_are_ignored() {
        let mut v = ExtendedVersionVector::new();
        v.record(A, 1, t(1), 10);
        v.record(A, 1, t(1), 10); // replay
        assert_eq!(v.meta(), 10);
        assert_eq!(v.count(A), 1);
    }

    #[test]
    fn events_are_chronological() {
        let (a, _) = figure4();
        let ev = a.events();
        assert_eq!(ev.len(), 3);
        assert!(ev.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ev[0].1, UpdateId { writer: B, seq: 1 });
    }

    #[test]
    fn cached_counters_track_history() {
        let (a, b) = figure4();
        let rebuilt =
            VersionVector::from_pairs(a.events().iter().map(|(_, id)| (id.writer, id.seq)));
        assert_eq!(a.counters(), &rebuilt);
        let mut c = a.clone();
        c.adopt(&b);
        assert_eq!(c.counters(), b.counters());
    }

    #[test]
    fn empty_reference_has_no_staleness() {
        let (a, _) = figure4();
        let empty = ExtendedVersionVector::new();
        let triple = a.triple_against(&empty);
        assert_eq!(triple.staleness, SimDuration::ZERO);
        assert_eq!(triple.order, 3.0); // all three of a's updates are "extra"
    }

    #[test]
    fn fresh_replica_is_fully_stale() {
        let (_, b) = figure4();
        let fresh = ExtendedVersionVector::new();
        let triple = fresh.triple_against(&b);
        // Never consistent -> last consistent at time zero.
        assert_eq!(triple.staleness, SimDuration::from_secs(3));
        assert_eq!(triple.order, 2.0); // misses both of b's updates
        assert_eq!(triple.numerical, 8.0);
    }

    #[test]
    fn adopt_makes_replicas_identical() {
        let (mut a, b) = figure4();
        let absorbed = a.adopt(&b);
        assert_eq!(absorbed, 1); // B's second update was the only one missed
        assert_eq!(a.compare(&b), VvOrdering::Equal);
        assert_eq!(a.meta(), b.meta());
        assert!(a.triple_against(&b).is_zero());
    }

    #[test]
    fn compare_views_match_classic() {
        let (a, b) = figure4();
        assert_eq!(a.compare(&b), VvOrdering::Concurrent);
        assert_eq!(a.counters().compare(b.counters()), VvOrdering::Concurrent);
    }

    #[test]
    fn paper_format_renders() {
        let mut v = ExtendedVersionVector::new();
        v.record(A, 1, t(1), 2);
        v.record(A, 2, t(2), 3);
        let s = v.paper_format();
        assert!(s.contains("w0:2(1, 2)"), "got {s}");
        assert!(s.contains("[5]"), "got {s}");
        assert_eq!(v.to_string(), s);
    }

    /// Reference implementation of the last-consistent point: the sorted
    /// event lists the pre-merge-walk code materialised.
    fn last_consistent_reference(a: &ExtendedVersionVector, b: &ExtendedVersionVector) -> SimTime {
        let ea = a.events();
        let eb = b.events();
        let mut last = SimTime::ZERO;
        for (x, y) in ea.iter().zip(eb.iter()) {
            if x == y {
                last = x.0;
            } else {
                break;
            }
        }
        last
    }

    /// Random interleaved histories for property tests.
    fn arb_evv() -> impl Strategy<Value = ExtendedVersionVector> {
        prop::collection::vec((0u32..4, 0u64..50, -5i64..5), 0..24).prop_map(|ops| {
            let mut v = ExtendedVersionVector::new();
            for (w, at, delta) in ops {
                let writer = WriterId(w);
                let next = v.count(writer) + 1;
                v.record(writer, next, SimTime::from_secs(at), delta);
            }
            v
        })
    }

    proptest! {
        #[test]
        fn triple_members_are_nonnegative(a in arb_evv(), b in arb_evv()) {
            let t = a.triple_against(&b);
            prop_assert!(t.numerical >= 0.0);
            prop_assert!(t.order >= 0.0);
        }

        #[test]
        fn order_error_is_symmetric(a in arb_evv(), b in arb_evv()) {
            prop_assert_eq!(
                a.triple_against(&b).order,
                b.triple_against(&a).order
            );
        }

        #[test]
        fn numerical_error_is_symmetric(a in arb_evv(), b in arb_evv()) {
            prop_assert_eq!(
                a.triple_against(&b).numerical,
                b.triple_against(&a).numerical
            );
        }

        #[test]
        fn zero_triple_iff_equal_counters_and_meta(a in arb_evv(), b in arb_evv()) {
            let t = a.triple_against(&b);
            if t.is_zero() {
                prop_assert_eq!(a.counters().compare(b.counters()), VvOrdering::Equal);
                prop_assert_eq!(a.meta(), b.meta());
            }
        }

        #[test]
        fn adopt_always_converges(mut a in arb_evv(), b in arb_evv()) {
            a.adopt(&b);
            prop_assert!(a.triple_against(&b).is_zero());
            prop_assert_eq!(a.compare(&b), VvOrdering::Equal);
        }

        #[test]
        fn order_error_equals_counter_gaps(a in arb_evv(), b in arb_evv()) {
            let t = a.triple_against(&b);
            let expected = a.counters().missing_from(b.counters())
                + b.counters().missing_from(a.counters());
            prop_assert_eq!(t.order, expected as f64);
        }

        #[test]
        fn staleness_bounded_by_reference_latest(a in arb_evv(), b in arb_evv()) {
            let t = a.triple_against(&b);
            match b.latest_update_time() {
                Some(latest) => prop_assert!(t.staleness <= latest.saturating_since(SimTime::ZERO)),
                None => prop_assert!(t.staleness.is_zero()),
            }
        }

        /// The allocation-free merge-walk must agree bit-for-bit with the
        /// sorted-event-list computation it replaced, including on
        /// non-monotonic per-writer timestamps.
        #[test]
        fn merge_walk_matches_sorted_event_lists(a in arb_evv(), b in arb_evv()) {
            prop_assert_eq!(a.last_consistent_with(&b), last_consistent_reference(&a, &b));
            prop_assert_eq!(b.last_consistent_with(&a), last_consistent_reference(&b, &a));
            prop_assert_eq!(a.last_consistent_with(&a), last_consistent_reference(&a, &a));
        }
    }
}
