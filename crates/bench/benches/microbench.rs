//! Criterion micro-benchmarks of IDEA's building blocks.
//!
//! These time the computational cost of the pieces the paper's delays are
//! made of (vector comparison, triple computation, Formula-1
//! quantification, gossip/RanSub rounds, store operations) — the
//! end-to-end table/figure scenarios live in `figures.rs`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use idea_core::{MaxBounds, Quantifier, Weights};
use idea_detect::round::DetectRound;
use idea_overlay::gossip::{simulate_spread, GossipConfig};
use idea_overlay::ransub::{RansubConfig, RansubTree};
use idea_store::Replica;
use idea_types::{NodeId, ObjectId, SimTime, Update, WriterId};
use idea_vv::{ExtendedVersionVector, VersionVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evv_with(writers: u32, updates_each: u64) -> ExtendedVersionVector {
    let mut v = ExtendedVersionVector::new();
    for w in 0..writers {
        for s in 1..=updates_each {
            v.record(WriterId(w), s, SimTime::from_secs(s), 1);
        }
    }
    v
}

fn bench_version_vectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("version-vector");
    for writers in [4u32, 16, 64] {
        let a = VersionVector::from_pairs((0..writers).map(|w| (WriterId(w), w as u64 + 1)));
        let b = VersionVector::from_pairs((0..writers).map(|w| (WriterId(w), w as u64 + 2)));
        group.bench_with_input(BenchmarkId::new("compare", writers), &writers, |bench, _| {
            bench.iter(|| black_box(a.compare(&b)))
        });
        group.bench_with_input(BenchmarkId::new("merge", writers), &writers, |bench, _| {
            bench.iter(|| black_box(a.merged(&b)))
        });
    }
    group.finish();
}

fn bench_triple(c: &mut Criterion) {
    let mut group = c.benchmark_group("extended-vv");
    for updates in [10u64, 50, 200] {
        let a = evv_with(4, updates);
        let b = evv_with(4, updates + 3);
        group.bench_with_input(
            BenchmarkId::new("triple_against", updates * 4),
            &updates,
            |bench, _| bench.iter(|| black_box(a.triple_against(&b))),
        );
    }
    group.finish();
}

fn bench_quantify(c: &mut Criterion) {
    let q = Quantifier::new(Weights::EQUAL, MaxBounds::PAPER_EXAMPLE);
    let a = evv_with(4, 40);
    let b = evv_with(4, 43);
    let triple = a.triple_against(&b);
    c.bench_function("formula1_quantify", |bench| {
        bench.iter(|| black_box(q.level(black_box(&triple))))
    });
}

fn bench_detect_round(c: &mut Criterion) {
    let mine = evv_with(4, 40);
    let peers = [NodeId(1), NodeId(2), NodeId(3)];
    c.bench_function("detect_round_complete", |bench| {
        bench.iter(|| {
            let mut round = DetectRound::start(NodeId(0), 1, &peers, SimTime::ZERO, mine.clone());
            for p in peers {
                round.on_reply(p, evv_with(4, 41));
            }
            black_box(round.complete(&mine, SimTime::from_secs(1)))
        })
    });
}

fn bench_gossip(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip-spread");
    for n in [40usize, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            let mut rng = StdRng::seed_from_u64(7);
            bench.iter(|| {
                black_box(simulate_spread(
                    n,
                    NodeId(0),
                    GossipConfig { fanout: 3, ttl: 5, ..Default::default() },
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

fn bench_ransub(c: &mut Criterion) {
    let mut group = c.benchmark_group("ransub-round");
    for n in [40usize, 160] {
        let tree = RansubTree::new(n, RansubConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            let mut rng = StdRng::seed_from_u64(7);
            bench.iter(|| black_box(tree.round(&mut rng)))
        });
    }
    group.finish();
}

fn bench_store(c: &mut Criterion) {
    c.bench_function("replica_apply_100", |bench| {
        bench.iter(|| {
            let mut r = Replica::new(ObjectId(1));
            for s in 1..=100u64 {
                let u = Update::opaque(ObjectId(1), WriterId(0), s, SimTime::from_secs(s), 1);
                r.apply(u).expect("in order");
            }
            black_box(r.len())
        })
    });
    // The resolution hot path: reconcile a diverged replica to a reference.
    let mut reference = Replica::new(ObjectId(1));
    for s in 1..=100u64 {
        reference
            .apply(Update::opaque(ObjectId(1), WriterId(1), s, SimTime::from_secs(s), 1))
            .expect("in order");
    }
    c.bench_function("replica_reconcile_100", |bench| {
        bench.iter(|| {
            let mut r = Replica::new(ObjectId(1));
            for s in 1..=20u64 {
                r.apply(Update::opaque(ObjectId(1), WriterId(0), s, SimTime::from_secs(s), 1))
                    .expect("in order");
            }
            black_box(r.reconcile_to(reference.log()))
        })
    });
}

criterion_group!(
    benches,
    bench_version_vectors,
    bench_triple,
    bench_quantify,
    bench_detect_round,
    bench_gossip,
    bench_ransub,
    bench_store,
);
criterion_main!(benches);
