//! End-to-end regeneration of every table and figure, under Criterion.
//!
//! Each benchmark first prints the paper-vs-measured report once (so
//! `cargo bench` output doubles as the reproduction record), then times the
//! full scenario execution — wall-clock cost of simulating the experiment,
//! which is the harness's own performance story.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use idea_workload::experiments::{ablate, fig10, fig2, fig7, fig8, fig9, table2, table3};

const SEED: u64 = 7;

fn bench_fig7(c: &mut Criterion) {
    for (anchors, label) in [(fig7::FIG7A, "fig7a_hint95"), (fig7::FIG7B, "fig7b_hint85")] {
        let result = fig7::run(anchors.hint, SEED);
        println!("\n===== {label} =====\n{}", fig7::report(&anchors, &result));
        println!("shape holds: {}\n", fig7::shape_holds(&anchors, &result, 0.10));
        c.bench_function(label, |b| b.iter(|| black_box(fig7::run(anchors.hint, SEED))));
    }
}

fn bench_fig8(c: &mut Criterion) {
    let result = fig8::run(SEED);
    println!("\n===== fig8 =====\n{}", fig8::report(&result));
    println!("shape holds: {}\n", fig8::shape_holds(&result, 0.08));
    c.bench_function("fig8_hint_reset", |b| b.iter(|| black_box(fig8::run(SEED))));
}

fn bench_table2(c: &mut Criterion) {
    let result = table2::run(SEED);
    println!("\n===== table2 =====\n{}", table2::report(&result));
    println!("shape holds: {}\n", table2::shape_holds(&result));
    c.bench_function("table2_phase_breakdown", |b| b.iter(|| black_box(table2::run(SEED))));
}

fn bench_fig9(c: &mut Criterion) {
    let points = fig9::run(10, SEED);
    println!("\n===== fig9 =====\n{}", fig9::report(&points));
    println!("shape holds: {}\n", fig9::shape_holds(&points, 0.45));
    c.bench_function("fig9_scalability", |b| b.iter(|| black_box(fig9::run(6, SEED))));
}

fn bench_table3(c: &mut Criterion) {
    let result = table3::run(SEED);
    println!("\n===== table3 =====\n{}", table3::report(&result));
    println!("shape holds: {}\n", table3::shape_holds(&result));
    c.bench_function("table3_overhead", |b| b.iter(|| black_box(table3::run(SEED))));
}

fn bench_fig10(c: &mut Criterion) {
    let result = fig10::run(SEED);
    println!("\n===== fig10 =====\n{}", fig10::report(&result));
    println!("shape holds: {}\n", fig10::shape_holds(&result));
    c.bench_function("fig10_automatic", |b| b.iter(|| black_box(fig10::run(SEED))));
}

fn bench_fig2(c: &mut Criterion) {
    let cfg = fig2::TradeoffConfig { seed: SEED, ..Default::default() };
    let rows = fig2::run(&cfg);
    println!("\n===== fig2 =====\n{}", fig2::report(&rows));
    println!("shape holds: {}\n", fig2::shape_holds(&rows));
    c.bench_function("fig2_tradeoff", |b| b.iter(|| black_box(fig2::run(&cfg))));
}

fn bench_ablations(c: &mut Criterion) {
    let coverage = ablate::run_coverage(40);
    println!("\n===== ablation A1 =====\n{}", ablate::report_coverage(&coverage));
    let parallel = ablate::run_parallel(8, SEED);
    println!("\n===== ablation A3 =====\n{}", ablate::report_parallel(&parallel));
    let bounds = ablate::run_bounds();
    println!("\n===== ablation A4 =====\n{}", ablate::report_bounds(&bounds));
    c.bench_function("ablate_coverage", |b| b.iter(|| black_box(ablate::run_coverage(40))));
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig7, bench_fig8, bench_table2, bench_fig9, bench_table3,
              bench_fig10, bench_fig2, bench_ablations
}
criterion_main!(figures);
