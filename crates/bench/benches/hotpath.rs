//! Criterion micro-benchmarks of the detection hot path at realistic
//! history depths.
//!
//! Complements `microbench.rs`: these sweep history size (10 / 100 / 1 000
//! updates) over exactly the operations the wire-compaction work rewrote —
//! `record`, the cached `counters` view, the merge-walk `triple_against`,
//! `adopt`, the compact `summary`/`suffix_since` encodes, and classic
//! `missing_from` — so regressions in the allocation-free paths show up
//! directly. The timer-wheel and gossip-digest groups cover the two
//! structures the lazy-gossip work added to the hot path: the engine's
//! `(at, seq)`-ordered timer queue and the IHAVE advertisement codec.
//! The collect-delta and fetch-chunk groups cover the resolution-plane
//! compaction wire forms: the `VvDelta` collect answer (cost must track
//! divergence, not history depth) and the chunked `FetchReply` batch.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use idea_net::TimerWheel;
use idea_overlay::gossip::{decode_digest, encode_digest, RumorId};
use idea_transport::WireCodec;
use idea_types::{NodeId, ObjectId, SimTime, Update, UpdateId, UpdatePayload, WriterId};
use idea_vv::{ExtendedVersionVector, VersionVector, VvDelta};
use std::collections::HashSet;

/// History sizes swept: total updates spread over four writers.
const SIZES: [u64; 3] = [10, 100, 1_000];

fn evv_total(total: u64) -> ExtendedVersionVector {
    let mut v = ExtendedVersionVector::new();
    for i in 0..total {
        let w = WriterId((i % 4) as u32);
        v.record(w, i / 4 + 1, SimTime::from_secs(i + 1), 1);
    }
    v
}

/// A copy of `base` with one extra update per writer (small divergence —
/// the steady-state shape detection sees).
fn diverged(base: &ExtendedVersionVector) -> ExtendedVersionVector {
    let mut v = base.clone();
    for w in 0..4u32 {
        let writer = WriterId(w);
        v.record(writer, v.count(writer) + 1, SimTime::from_secs(10_000 + w as u64), 1);
    }
    v
}

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("evv-record");
    for &total in &SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(total), &total, |b, &total| {
            b.iter(|| black_box(evv_total(total)))
        });
    }
    group.finish();
}

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("evv-counters");
    for &total in &SIZES {
        let v = evv_total(total);
        group.bench_with_input(BenchmarkId::from_parameter(total), &total, |b, _| {
            // Cached view: must be O(1) regardless of history depth.
            b.iter(|| black_box(v.counters().total()))
        });
    }
    group.finish();
}

fn bench_triple_against(c: &mut Criterion) {
    let mut group = c.benchmark_group("evv-triple-against");
    for &total in &SIZES {
        let a = evv_total(total);
        let b = diverged(&a);
        group.bench_with_input(BenchmarkId::from_parameter(total), &total, |bench, _| {
            bench.iter(|| black_box(a.triple_against(&b)))
        });
    }
    group.finish();
}

fn bench_adopt(c: &mut Criterion) {
    let mut group = c.benchmark_group("evv-adopt");
    for &total in &SIZES {
        let a = evv_total(total);
        let b = diverged(&a);
        group.bench_with_input(BenchmarkId::from_parameter(total), &total, |bench, _| {
            bench.iter(|| {
                let mut v = a.clone();
                black_box(v.adopt(&b))
            })
        });
    }
    group.finish();
}

fn bench_wire_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("evv-wire");
    for &total in &SIZES {
        let a = evv_total(total);
        let b = diverged(&a);
        group.bench_with_input(BenchmarkId::new("summary", total), &total, |bench, _| {
            bench.iter(|| black_box(b.summary(8)))
        });
        group.bench_with_input(BenchmarkId::new("suffix_since", total), &total, |bench, _| {
            bench.iter(|| black_box(b.suffix_since(a.counters())))
        });
    }
    group.finish();
}

fn bench_missing_from(c: &mut Criterion) {
    let mut group = c.benchmark_group("vv-missing-from");
    for &total in &SIZES {
        let a = evv_total(total);
        let b = diverged(&a);
        let (ca, cb): (&VersionVector, &VersionVector) = (a.counters(), b.counters());
        group.bench_with_input(BenchmarkId::from_parameter(total), &total, |bench, _| {
            bench.iter(|| black_box(ca.missing_from(cb)))
        });
    }
    group.finish();
}

/// Timer counts swept for the wheel benches: a busy shard's in-flight
/// timer population (detect deadlines, sweep deadlines, pull and flush
/// timers) sits in the hundreds-to-tens-of-thousands range.
const TIMERS: [u64; 3] = [100, 1_000, 10_000];

/// Spread deadline for timer `i`: multiplicative-hash scatter over a ~1 M
/// tick horizon, exercising all wheel levels instead of one hot slot.
fn deadline(i: u64) -> u64 {
    (i.wrapping_mul(7919)) % 1_048_576
}

fn wheel_with(n: u64) -> TimerWheel<u64> {
    let mut w = TimerWheel::new();
    for i in 0..n {
        w.push(deadline(i), i, i);
    }
    w
}

/// The `SimEngine` timer-queue operations the heap-to-wheel swap rewrote:
/// schedule (push at scattered deadlines), fire (drain in `(at, seq)`
/// order, cascading across levels), and cancel (the engine's tombstone
/// set, checked as each entry pops). A drained wheel is not reusable, so
/// `fire` and `cancel` rebuild inside the measured routine — subtract the
/// `schedule` entry for the pop-side cost alone.
fn bench_timer_wheel(c: &mut Criterion) {
    let mut group = c.benchmark_group("timer-wheel");
    for &n in &TIMERS {
        group.bench_with_input(BenchmarkId::new("schedule", n), &n, |bench, &n| {
            bench.iter(|| black_box(wheel_with(n)))
        });
        group.bench_with_input(BenchmarkId::new("fire", n), &n, |bench, &n| {
            bench.iter(|| {
                let mut w = wheel_with(n);
                while let Some(e) = w.pop() {
                    black_box(e);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("cancel", n), &n, |bench, &n| {
            bench.iter(|| {
                // Half the timers are cancelled before they fire —
                // tombstoned exactly like `SimEngine::cancel_timer`.
                let mut w = wheel_with(n);
                let mut cancelled: HashSet<u64> = (0..n).filter(|i| i % 2 == 0).collect();
                while let Some((at, seq, id)) = w.pop() {
                    if cancelled.remove(&id) {
                        continue;
                    }
                    black_box((at, seq, id));
                }
            })
        });
    }
    group.finish();
}

/// Advertisement batch sizes swept for the digest codec: a piggybacked
/// entry or two is the common case, a flush-timer batch the tail.
const DIGESTS: [usize; 3] = [1, 16, 128];

fn digest_entries(len: usize) -> Vec<(RumorId, u8)> {
    (0..len).map(|i| (RumorId { origin: NodeId((i % 64) as u32), seq: i as u64 }, 4)).collect()
}

/// The lazy gossip plane's wire codec: IHAVE advertisements encode at
/// [`idea_overlay::gossip::DIGEST_ENTRY_BYTES`] per entry and decode on
/// every detect message carrying piggybacked digests.
fn bench_digest_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip-digest");
    for &len in &DIGESTS {
        let entries = digest_entries(len);
        let bytes = encode_digest(&entries);
        group.bench_with_input(BenchmarkId::new("encode", len), &len, |bench, _| {
            bench.iter(|| black_box(encode_digest(&entries)))
        });
        group.bench_with_input(BenchmarkId::new("decode", len), &len, |bench, _| {
            bench.iter(|| black_box(decode_digest(&bytes)))
        });
    }
    group.finish();
}

/// Per-writer suffix depths swept for the collect-delta codec: how far
/// the probed member is ahead of the initiator's summary. One extra
/// update per writer is the steady-state divergence; hundreds is the
/// catching-up-after-partition tail.
const DELTA_DEPTHS: [u64; 3] = [1, 16, 256];

/// The compact collect answer on the wire: a [`VvDelta`] carved by
/// `suffix_since` from a 1,000-update history, encoded with the transport
/// [`WireCodec`] the resolution plane ships it with. Cost must scale with
/// the *divergence*, never the history depth — that is the whole point of
/// the delta form.
fn bench_collect_delta_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("collect-delta-wire");
    for &depth in &DELTA_DEPTHS {
        let base = evv_total(1_000);
        let mut ahead = base.clone();
        for w in 0..4u32 {
            let writer = WriterId(w);
            for i in 0..depth {
                ahead.record(writer, ahead.count(writer) + 1, SimTime::from_secs(20_000 + i), 1);
            }
        }
        let delta = ahead.suffix_since(base.counters());
        let bytes = delta.to_bytes();
        group.bench_with_input(BenchmarkId::new("encode", depth), &depth, |bench, _| {
            bench.iter(|| black_box(delta.to_bytes()))
        });
        group.bench_with_input(BenchmarkId::new("decode", depth), &depth, |bench, _| {
            bench.iter(|| black_box(VvDelta::from_bytes(&bytes).expect("round trip")))
        });
    }
    group.finish();
}

/// Fetch chunk sizes swept: the `max_fetch_updates` bounds the
/// end-to-end tests pin, with 64 as the large-chunk tail.
const FETCH_CHUNKS: [usize; 3] = [1, 7, 64];

fn update_chunk(len: usize) -> Vec<Update> {
    (0..len)
        .map(|i| Update {
            object: ObjectId(1),
            id: UpdateId { writer: WriterId((i % 4) as u32), seq: (i / 4 + 1) as u64 },
            at: SimTime::from_secs(i as u64 + 1),
            meta_delta: 1,
            payload: UpdatePayload::none(),
        })
        .collect()
}

/// One chunked `FetchReply`'s update batch through the transport codec —
/// the framing cost of splitting a backlog into `max_fetch_updates`-sized
/// chunks instead of one unbounded reply.
fn bench_fetch_chunk_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("fetch-chunk-wire");
    for &len in &FETCH_CHUNKS {
        let chunk = update_chunk(len);
        let bytes = chunk.to_bytes();
        group.bench_with_input(BenchmarkId::new("encode", len), &len, |bench, _| {
            bench.iter(|| black_box(chunk.to_bytes()))
        });
        group.bench_with_input(BenchmarkId::new("decode", len), &len, |bench, _| {
            bench.iter(|| black_box(Vec::<Update>::from_bytes(&bytes).expect("round trip")))
        });
    }
    group.finish();
}

criterion_group!(
    hotpath,
    bench_record,
    bench_counters,
    bench_triple_against,
    bench_adopt,
    bench_wire_forms,
    bench_missing_from,
    bench_timer_wheel,
    bench_digest_codec,
    bench_collect_delta_codec,
    bench_fetch_chunk_codec
);
criterion_main!(hotpath);
