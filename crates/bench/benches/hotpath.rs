//! Criterion micro-benchmarks of the detection hot path at realistic
//! history depths.
//!
//! Complements `microbench.rs`: these sweep history size (10 / 100 / 1 000
//! updates) over exactly the operations the wire-compaction work rewrote —
//! `record`, the cached `counters` view, the merge-walk `triple_against`,
//! `adopt`, the compact `summary`/`suffix_since` encodes, and classic
//! `missing_from` — so regressions in the allocation-free paths show up
//! directly.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use idea_types::{SimTime, WriterId};
use idea_vv::{ExtendedVersionVector, VersionVector};

/// History sizes swept: total updates spread over four writers.
const SIZES: [u64; 3] = [10, 100, 1_000];

fn evv_total(total: u64) -> ExtendedVersionVector {
    let mut v = ExtendedVersionVector::new();
    for i in 0..total {
        let w = WriterId((i % 4) as u32);
        v.record(w, i / 4 + 1, SimTime::from_secs(i + 1), 1);
    }
    v
}

/// A copy of `base` with one extra update per writer (small divergence —
/// the steady-state shape detection sees).
fn diverged(base: &ExtendedVersionVector) -> ExtendedVersionVector {
    let mut v = base.clone();
    for w in 0..4u32 {
        let writer = WriterId(w);
        v.record(writer, v.count(writer) + 1, SimTime::from_secs(10_000 + w as u64), 1);
    }
    v
}

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("evv-record");
    for &total in &SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(total), &total, |b, &total| {
            b.iter(|| black_box(evv_total(total)))
        });
    }
    group.finish();
}

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("evv-counters");
    for &total in &SIZES {
        let v = evv_total(total);
        group.bench_with_input(BenchmarkId::from_parameter(total), &total, |b, _| {
            // Cached view: must be O(1) regardless of history depth.
            b.iter(|| black_box(v.counters().total()))
        });
    }
    group.finish();
}

fn bench_triple_against(c: &mut Criterion) {
    let mut group = c.benchmark_group("evv-triple-against");
    for &total in &SIZES {
        let a = evv_total(total);
        let b = diverged(&a);
        group.bench_with_input(BenchmarkId::from_parameter(total), &total, |bench, _| {
            bench.iter(|| black_box(a.triple_against(&b)))
        });
    }
    group.finish();
}

fn bench_adopt(c: &mut Criterion) {
    let mut group = c.benchmark_group("evv-adopt");
    for &total in &SIZES {
        let a = evv_total(total);
        let b = diverged(&a);
        group.bench_with_input(BenchmarkId::from_parameter(total), &total, |bench, _| {
            bench.iter(|| {
                let mut v = a.clone();
                black_box(v.adopt(&b))
            })
        });
    }
    group.finish();
}

fn bench_wire_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("evv-wire");
    for &total in &SIZES {
        let a = evv_total(total);
        let b = diverged(&a);
        group.bench_with_input(BenchmarkId::new("summary", total), &total, |bench, _| {
            bench.iter(|| black_box(b.summary(8)))
        });
        group.bench_with_input(BenchmarkId::new("suffix_since", total), &total, |bench, _| {
            bench.iter(|| black_box(b.suffix_since(a.counters())))
        });
    }
    group.finish();
}

fn bench_missing_from(c: &mut Criterion) {
    let mut group = c.benchmark_group("vv-missing-from");
    for &total in &SIZES {
        let a = evv_total(total);
        let b = diverged(&a);
        let (ca, cb): (&VersionVector, &VersionVector) = (a.counters(), b.counters());
        group.bench_with_input(BenchmarkId::from_parameter(total), &total, |bench, _| {
            bench.iter(|| black_box(ca.missing_from(cb)))
        });
    }
    group.finish();
}

criterion_group!(
    hotpath,
    bench_record,
    bench_counters,
    bench_triple_against,
    bench_adopt,
    bench_wire_forms,
    bench_missing_from
);
criterion_main!(hotpath);
