//! The benchmark harness: one binary per table/figure of the paper plus the
//! ablations, and two Criterion benches.
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Figure 2 (trade-off) | `cargo run -p idea-bench --release --bin fig2` |
//! | Figure 7(a)/(b) | `cargo run -p idea-bench --release --bin fig7 -- 0.95` / `-- 0.85` |
//! | Figure 8 | `cargo run -p idea-bench --release --bin fig8` |
//! | Table 2 | `cargo run -p idea-bench --release --bin table2` |
//! | Figure 9 | `cargo run -p idea-bench --release --bin fig9` |
//! | Table 3 | `cargo run -p idea-bench --release --bin table3` |
//! | Figure 10 | `cargo run -p idea-bench --release --bin fig10` |
//! | Ablations A1–A4 | `ablate_coverage`, `ablate_rollback`, `ablate_parallel`, `ablate_booking_bounds` |
//!
//! `cargo bench` runs `benches/figures.rs` (every scenario end-to-end,
//! printing the paper-vs-measured reports) and `benches/microbench.rs`
//! (Criterion timings of the building blocks).

#![forbid(unsafe_code)]

pub mod hist;

pub use hist::LatencyHistogram;

/// Default seed shared by the binaries so their outputs agree with the
/// committed EXPERIMENTS.md.
pub const DEFAULT_SEED: u64 = 7;

/// Parses an optional `--seed N`-style trailing argument (`args[i]` may also
/// be a bare float/int used by individual binaries).
pub fn seed_from_args() -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--seed" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    DEFAULT_SEED
}
