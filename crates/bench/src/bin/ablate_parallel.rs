//! Ablation A3: sequential vs parallel phase 2 (§6.2's optimisation).

use idea_workload::experiments::ablate;

fn main() {
    let rows = ablate::run_parallel(10, idea_bench::seed_from_args());
    println!("{}", ablate::report_parallel(&rows));
}
