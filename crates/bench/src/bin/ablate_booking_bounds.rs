//! Ablation A4: the §5.2 under/oversell frequency-bounds learning.

use idea_workload::experiments::ablate;

fn main() {
    let trace = ablate::run_bounds();
    println!("{}", ablate::report_bounds(&trace));
}
