//! Regenerates Figure 9: active-resolution delay vs top-layer size.

use idea_workload::experiments::fig9;

fn main() {
    let points = fig9::run(10, idea_bench::seed_from_args());
    println!("{}", fig9::report(&points));
    println!(
        "shape holds (linear, tracks formula 2, <1 s at n=10): {}",
        fig9::shape_holds(&points, 0.45)
    );
}
