//! Regenerates Figure 8: 200 s hint-based run with a 95 % → 90 % reset.

use idea_workload::experiments::fig8;

fn main() {
    let result = fig8::run(idea_bench::seed_from_args());
    println!("{}", fig8::report(&result));
    println!("shape holds (floors track the hints): {}", fig8::shape_holds(&result, 0.08));
}
