//! Perf baseline harness for the detection hot path.
//!
//! Times the three costs the wire-compaction work targets — pairwise
//! `triple_against`, shipping a vector (full clone vs compact
//! [`idea_vv::VvSummary`] encode), and an N-node detect-round simulation — and emits
//! machine-readable `BENCH_hotpath.json` so future PRs have a trajectory to
//! compare against.
//!
//! The `baseline` block is the pre-compaction measurement (full
//! `ExtendedVersionVector` on every detect/sweep message, `events()` sort
//! per triple, per-write probe rounds), recorded with the identical
//! scenario driver at commit `bafd422` before the wire change landed; the
//! `current` block is measured at run time. `batched` additionally runs the
//! N=40 scenario under a burst workload with and without the
//! `detect_batch_window` coalescing, showing the probe-count reduction.
//!
//! The `sharded_drain` block measures the same backlogged write blast on
//! the threaded runtime with 1 vs 4 shard workers per node
//! (`ShardedEngine`); the recorded `cores` count qualifies the speedup —
//! on a single-core machine the configurations can only tie.
//!
//! The `fan_in` block sweeps concurrent-session counts (10 → 10,000)
//! against both server implementations at a fixed aggregate request rate,
//! recording latency percentiles from a child-process client and the
//! server's peak thread count — the threaded-vs-evented scaling story.
//!
//! Usage: `cargo run -p idea-bench --release --bin perf_hotpath`
//! (optionally `--seed N`; `--small` runs the N ∈ {10, 80} scale points
//! and a reduced drain for CI smoke; `--gossip-scale`, `--fan-in`,
//! `--burst` and `--durability` are the self-contained CI smokes of their
//! blocks — `--burst` covers the `resolution_compaction` wire A/B,
//! `--durability` the WAL write-drain/recovery/rejoin costs).

use idea_bench::LatencyHistogram;
use idea_core::client::{Command, CommandExecutor};
use idea_core::{DurabilityConfig, IdeaConfig, IdeaNode, LockedEngine};
use idea_net::{MsgClass, ShardedEngine, SimConfig, SimEngine, ThreadedConfig, Topology};
use idea_overlay::GossipMode;
use idea_transport::frame::{frame_bytes, parse_frame, read_frame, Frame, FramePayload};
use idea_transport::{IdeaServer, RemoteEngine, ServerConfig, ServerMode};
use idea_types::{NodeId, ObjectId, ShardId, SimDuration, SimTime, UpdatePayload, WriterId};
use idea_vv::ExtendedVersionVector;
use idea_wal::ShardWal;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{Read as _, Write as IoWrite};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Writers driving the detect-round scenario (the paper's top-layer size).
const WRITERS: usize = 4;
/// Measurement window of the scenario.
const WINDOW_SECS: u64 = 600;
/// Per-writer write period. The paper's workload writes every 5 s; the
/// harness presses harder (2 s) so per-writer histories reach ~300 updates
/// and the history-proportional costs dominate the measurement.
const WRITE_PERIOD_SECS: u64 = 2;

/// Pre-change baseline, recorded with this exact driver (seed 7, burst 1)
/// on the commit before the compact wire forms: `(n, detect_msgs,
/// detect_bytes, gossip_msgs, gossip_bytes, total_msgs, wall_ms)`.
const BASELINE_SCENARIOS: &[(usize, u64, u64, u64, u64, u64, f64)] = &[
    (10, 2_322, 2_356_808, 8_213, 653_336, 13_865, 16.4),
    (40, 2_320, 2_355_528, 26_058, 2_074_404, 31_541, 25.6),
    (80, 2_318, 2_356_624, 40_932, 3_255_392, 46_616, 35.9),
];
/// Pre-change micro timings from the same run: `triple_against` over two
/// 4-writer × 250-update vectors, and a full-vector clone.
const BASELINE_TRIPLE_NS: f64 = 36_511.1;
const BASELINE_CLONE_NS: f64 = 249.4;

/// Measurement window of the fig9 gossip-scale sweep — shorter than the
/// N ≤ 80 trajectory window so the N=640 point stays affordable in CI.
const GOSSIP_SCALE_WINDOW_SECS: u64 = 120;
/// Pre-flip eager baseline for the fig9 extension, recorded with this
/// exact driver (seed 7, burst 1, 120 s window) at the commit where the
/// lazy plane landed but the default gossip mode was still eager:
/// `(n, gossip_msgs, gossip_bytes)`.
const GOSSIP_SCALE_EAGER_BASELINE: &[(usize, u64, u64)] =
    &[(160, 6_496, 489_960), (320, 8_331, 626_272), (640, 9_447, 700_252)];

/// Pre-compaction resolution-plane traffic `(resolution_msgs,
/// resolution_bytes)` at the burst N=40 point, recorded with this exact
/// driver (seed 7, burst 8) at commit `f367aa9` — before the delta
/// collect / compact inform / chunked fetch wire landed. The PR-8
/// acceptance bar is the batched leg's bytes dropping ≥ 4× below this.
const RESOLUTION_BASELINE_PER_WRITE: (u64, u64) = (15_820, 15_362_048);
const RESOLUTION_BASELINE_BATCHED: (u64, u64) = (7_358, 8_163_344);

/// One detect-round scenario measurement.
#[derive(Debug, Clone)]
struct ScenarioStats {
    n: usize,
    detect_msgs: u64,
    detect_bytes: u64,
    gossip_msgs: u64,
    gossip_bytes: u64,
    resolution_msgs: u64,
    resolution_bytes: u64,
    total_msgs: u64,
    wall_ms: f64,
}

impl ScenarioStats {
    /// Gossip bytes normalised per node — the fig9 scale-out number: the
    /// fanout work each node pays, independent of deployment size.
    fn gossip_bytes_per_node(&self) -> f64 {
        self.gossip_bytes as f64 / self.n as f64
    }

    fn msgs_per_node(&self) -> f64 {
        self.total_msgs as f64 / self.n as f64
    }

    fn json(&self) -> String {
        format!(
            "{{\"n\": {}, \"detect_msgs\": {}, \"detect_bytes\": {}, \"gossip_msgs\": {}, \"gossip_bytes\": {}, \"gossip_bytes_per_node\": {:.1}, \"msgs_per_node\": {:.1}, \"resolution_msgs\": {}, \"resolution_bytes\": {}, \"total_msgs\": {}, \"wall_ms\": {:.1}}}",
            self.n, self.detect_msgs, self.detect_bytes, self.gossip_msgs, self.gossip_bytes,
            self.gossip_bytes_per_node(), self.msgs_per_node(),
            self.resolution_msgs, self.resolution_bytes, self.total_msgs, self.wall_ms
        )
    }
}

/// The plane-selection knobs of [`detect_round_scenario_mode`], bundled so
/// the A/B legs read as named overrides instead of positional booleans.
struct ScenarioOpts {
    /// Forced gossip plane (`None` = the config default).
    mode: Option<GossipMode>,
    /// Virtual-time window the writers are driven for.
    window_secs: u64,
    /// Resolution wire: `false` = the legacy full-EVV collect/inform
    /// forms, the `resolution_compaction` A/B leg.
    compact: bool,
    /// Cross-object digest batching (the `gossip_scale` A/B leg).
    batch_digests: bool,
}

impl ScenarioOpts {
    /// The measured default: config-default gossip plane, full window,
    /// compact resolution wire, no digest batching.
    fn default_window(window_secs: u64) -> Self {
        Self { mode: None, window_secs, compact: true, batch_digests: false }
    }
}

/// Drives `WRITERS` staggered writers for `opts.window_secs` of virtual
/// time on an `n`-node cluster and reports the network cost of the
/// detection layer. The hint floor keeps replicas converging through
/// resolutions, as in the paper's §6.1 runs — which is exactly the regime
/// where shipping full histories is wasteful: the history keeps growing
/// while the actual divergence stays bounded. `burst` writes are issued
/// 50 ms apart at each write slot (1 = the paper's workload); `batch_ms`
/// arms the probe coalescing window; the remaining plane knobs ride in
/// [`ScenarioOpts`].
fn detect_round_scenario_mode(
    n: usize,
    seed: u64,
    burst: usize,
    batch_ms: Option<u64>,
    opts: ScenarioOpts,
) -> ScenarioStats {
    let obj = ObjectId(1);
    let mut cfg = IdeaConfig::whiteboard(0.95);
    cfg.detect_batch_window = batch_ms.map(SimDuration::from_millis);
    cfg.compact_resolution = opts.compact;
    cfg.batch_digests = opts.batch_digests;
    if let Some(m) = opts.mode {
        cfg.gossip.mode = m;
    }
    let nodes: Vec<IdeaNode> =
        (0..n).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[obj])).collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(n, seed),
        SimConfig { seed, ..Default::default() },
        nodes,
    );

    let start = Instant::now();
    let writers = WRITERS.min(n);
    let end = SimTime::ZERO + SimDuration::from_secs(opts.window_secs);
    let mut next_write: Vec<SimTime> =
        (0..writers).map(|w| SimTime::ZERO + SimDuration::from_secs(w as u64)).collect();
    loop {
        let t = next_write.iter().copied().min().expect("at least one writer");
        if t > end {
            break;
        }
        eng.run_until(t);
        for (w, next) in next_write.iter_mut().enumerate() {
            if *next == t {
                for _ in 0..burst {
                    eng.with_node(NodeId(w as u32), |p, ctx| {
                        p.local_write(obj, 1, UpdatePayload::none(), ctx);
                    });
                    eng.run_for(SimDuration::from_millis(50));
                }
                *next = t + SimDuration::from_secs(WRITE_PERIOD_SECS);
            }
        }
    }
    eng.run_until(end + SimDuration::from_secs(5));
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let s = eng.stats();
    ScenarioStats {
        n,
        detect_msgs: s.messages(MsgClass::Detect),
        detect_bytes: s.payload_bytes(MsgClass::Detect),
        gossip_msgs: s.messages(MsgClass::Gossip),
        gossip_bytes: s.payload_bytes(MsgClass::Gossip),
        resolution_msgs: s.messages(MsgClass::ResolutionCtl) + s.messages(MsgClass::Transfer),
        resolution_bytes: s.payload_bytes(MsgClass::ResolutionCtl)
            + s.payload_bytes(MsgClass::Transfer),
        total_msgs: s.total_messages(),
        wall_ms,
    }
}

/// How the timed write blast reaches the shard workers.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DrainRoute {
    /// `ShardedEngine::invoke` closures — the low-level escape hatch.
    Closure,
    /// `Command::Write` through `EngineHandle::submit` — the typed client
    /// layer a network frontend would use.
    Session,
    /// The same `Command::Write` submits, but framed over loopback TCP
    /// through `RemoteEngine → IdeaServer` — what the served system costs
    /// on the write drain versus in-process submission.
    Remote,
}

/// Sharded-vs-unsharded wall clock on the threaded runtime: `writers` hot
/// nodes of an `n`-node cluster blast `rounds` write waves over `objects`
/// disjoint objects with no pacing, so the hot nodes' mailboxes backlog and
/// message processing — not virtual-time sleeping — dominates. The same
/// workload then drains on `shards` workers per node; with shards > 1 the
/// backlogged nodes process disjoint objects concurrently. `route` selects
/// closure-injected vs session-routed writes for the timed phase, which is
/// what pins the command layer's overhead (`client_overhead` in the JSON).
///
/// Returns the stats alongside wall time so the caller can verify both
/// configurations did equivalent protocol work.
fn sharded_drain_scenario(
    n: usize,
    shards: usize,
    seed: u64,
    rounds: usize,
    route: DrainRoute,
) -> ScenarioStats {
    const OBJECTS: u64 = 16;
    const WRITERS_HOT: u32 = 4;
    let objects: Vec<ObjectId> = (1..=OBJECTS).map(ObjectId).collect();
    let mut cfg = IdeaConfig::whiteboard(0.95);
    cfg.store_shards = shards;
    let nodes: Vec<IdeaNode> =
        (0..n).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &objects)).collect();

    let eng = Arc::new(ShardedEngine::start(
        Topology::planetlab(n, seed),
        ThreadedConfig { seed, time_scale: 0.002, shards },
        nodes,
    ));
    // The remote route serves the same engine over loopback TCP and routes
    // the timed submits through a pooled client; the other routes never
    // touch the network.
    let served = if route == DrainRoute::Remote {
        let server = IdeaServer::bind("127.0.0.1:0", eng.clone()).expect("bind loopback");
        let remote =
            RemoteEngine::connect_pool(server.local_addr(), 4).expect("connect drain client");
        Some((server, remote))
    } else {
        None
    };
    let writers = WRITERS_HOT.min(n as u32);
    // Warm-up (untimed): paced write waves so the announce gossip spreads
    // and every object's top layer forms — the blast below must exercise
    // the detection/resolution paths, not just bootstrap announces. Larger
    // clusters need more waves for the announces to reach the writers.
    let warm_rounds = if n >= 40 { 6 } else { 3 };
    for _ in 0..warm_rounds {
        for w in 0..writers {
            for &obj in &objects {
                let s = ShardId::of(obj, shards).index();
                eng.invoke(NodeId(w), s, move |shard, ctx| {
                    shard.local_write(obj, 1, UpdatePayload::none(), ctx);
                });
            }
            eng.sleep_virtual(SimDuration::from_millis(400));
        }
        eng.sleep_virtual(SimDuration::from_secs(1));
    }
    eng.sleep_virtual(SimDuration::from_secs(3));

    // Timed phase: unpaced write blast — the hot nodes' mailboxes backlog —
    // then drain until traffic stops growing.
    let start = Instant::now();
    for _ in 0..rounds {
        for w in 0..writers {
            for &obj in &objects {
                match route {
                    DrainRoute::Closure => {
                        let s = ShardId::of(obj, shards).index();
                        eng.invoke(NodeId(w), s, move |shard, ctx| {
                            shard.local_write(obj, 1, UpdatePayload::none(), ctx);
                        });
                    }
                    DrainRoute::Session => {
                        let _ = eng.try_submit(
                            NodeId(w),
                            Command::Write {
                                object: obj,
                                meta_delta: 1,
                                payload: UpdatePayload::none(),
                            },
                        );
                    }
                    DrainRoute::Remote => {
                        let (_, remote) = served.as_ref().expect("remote route is served");
                        let _ = remote.try_submit(
                            NodeId(w),
                            Command::Write {
                                object: obj,
                                meta_delta: 1,
                                payload: UpdatePayload::none(),
                            },
                        );
                    }
                }
            }
        }
        eng.sleep_virtual(SimDuration::from_millis(500));
    }
    let mut last = 0u64;
    let mut stable = 0;
    let drain_deadline = Instant::now() + Duration::from_secs(60);
    while stable < 3 {
        if Instant::now() >= drain_deadline {
            // Steady traffic (e.g. background resolution) never goes quiet;
            // report what accumulated instead of hanging the CI smoke.
            eprintln!("sharded_drain: traffic did not settle within 60 s; reporting as-is");
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
        let total = eng.stats().per_class.iter().map(|(_, m, _)| *m).sum::<u64>();
        if total == last {
            stable += 1;
        } else {
            stable = 0;
            last = total;
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let snap = eng.stats();
    if let Some((server, remote)) = served {
        drop(remote);
        server.stop();
    }
    let eng = Arc::try_unwrap(eng).ok().expect("server released the engine");
    let _ = eng.stop();

    let class = |c: MsgClass| {
        snap.per_class
            .iter()
            .find(|(cl, _, _)| *cl == c)
            .map(|(_, m, b)| (*m, *b))
            .unwrap_or((0, 0))
    };
    let (dm, db) = class(MsgClass::Detect);
    let (gm, gb) = class(MsgClass::Gossip);
    let (rm, rb) = class(MsgClass::ResolutionCtl);
    let (tm, tb) = class(MsgClass::Transfer);
    let total: u64 = snap.per_class.iter().map(|(_, m, _)| *m).sum();
    ScenarioStats {
        n,
        detect_msgs: dm,
        detect_bytes: db,
        gossip_msgs: gm,
        gossip_bytes: gb,
        resolution_msgs: rm + tm,
        resolution_bytes: rb + tb,
        total_msgs: total,
        wall_ms,
    }
}

/// One fig9 gossip-scale point: the paper workload (burst 1, no probe
/// batching) on the shortened window, gossip plane forced to `mode` and
/// cross-object digest batching by `batch_digests`. Traffic counts are
/// deterministic per (n, seed, mode); wall time is reported as measured
/// from a single run.
fn gossip_scale_point(n: usize, seed: u64, mode: GossipMode, batch_digests: bool) -> ScenarioStats {
    detect_round_scenario_mode(
        n,
        seed,
        1,
        None,
        ScenarioOpts {
            mode: Some(mode),
            batch_digests,
            ..ScenarioOpts::default_window(GOSSIP_SCALE_WINDOW_SECS)
        },
    )
}

/// The digest-batching A/B of the `gossip_scale` block: one *hot* object
/// written by every writer each slot (so it probes constantly) plus seven
/// *cold* objects of the same shard written round-robin — too sparse for
/// a top layer of their own, so their pending lazy advertisements
/// otherwise wait on per-object flush timers. With cross-object batching
/// ([`IdeaConfig::batch_digests`], off by default to preserve shard
/// equivalence) those adverts hitch on the hot object's detect frames
/// instead: flush-timer gossip frames disappear, detect frames fatten.
/// This leg counts both sides of that trade; an all-hot or single-object
/// workload cannot — every hot object drains its own outbox on its own
/// detect round at the same instant, batched or not.
fn digest_batch_scenario(n: usize, seed: u64, batch: bool) -> ScenarioStats {
    const OBJECTS: u64 = 8;
    let objects: Vec<ObjectId> = (1..=OBJECTS).map(ObjectId).collect();
    let mut cfg = IdeaConfig::whiteboard(0.95);
    cfg.gossip.mode = GossipMode::Lazy;
    cfg.batch_digests = batch;
    let nodes: Vec<IdeaNode> =
        (0..n).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &objects)).collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(n, seed),
        SimConfig { seed, ..Default::default() },
        nodes,
    );
    let start = Instant::now();
    let writers = WRITERS.min(n);
    let end = SimTime::ZERO + SimDuration::from_secs(GOSSIP_SCALE_WINDOW_SECS);
    let hot = objects[0];
    let mut cold_slot = 0u64;
    let mut next_write: Vec<SimTime> =
        (0..writers).map(|w| SimTime::ZERO + SimDuration::from_secs(w as u64)).collect();
    loop {
        let t = next_write.iter().copied().min().expect("at least one writer");
        if t > end {
            break;
        }
        eng.run_until(t);
        for (w, next) in next_write.iter_mut().enumerate() {
            if *next == t {
                let cold = objects[1 + (cold_slot % (OBJECTS - 1)) as usize];
                cold_slot += 1;
                eng.with_node(NodeId(w as u32), |p, ctx| {
                    // Cold first: its announce adverts are in the outbox
                    // when the hot write's detect round goes out, which is
                    // the piggyback opportunity batching exists to take
                    // (hot first, and the 200 ms flush timer always beats
                    // the next probe, 2 s away).
                    p.local_write(cold, 1, UpdatePayload::none(), ctx);
                    p.local_write(hot, 1, UpdatePayload::none(), ctx);
                });
                *next = t + SimDuration::from_secs(WRITE_PERIOD_SECS);
            }
        }
    }
    eng.run_until(end + SimDuration::from_secs(5));
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let s = eng.stats();
    ScenarioStats {
        n,
        detect_msgs: s.messages(MsgClass::Detect),
        detect_bytes: s.payload_bytes(MsgClass::Detect),
        gossip_msgs: s.messages(MsgClass::Gossip),
        gossip_bytes: s.payload_bytes(MsgClass::Gossip),
        resolution_msgs: s.messages(MsgClass::ResolutionCtl) + s.messages(MsgClass::Transfer),
        resolution_bytes: s.payload_bytes(MsgClass::ResolutionCtl)
            + s.payload_bytes(MsgClass::Transfer),
        total_msgs: s.total_messages(),
        wall_ms,
    }
}

/// Min-of-three wall clock over identical deterministic runs (the minimum
/// of repeated identical work is the noise-robust estimator).
fn measured(n: usize, seed: u64, burst: usize, batch_ms: Option<u64>) -> ScenarioStats {
    measured_wire(n, seed, burst, batch_ms, true)
}

/// [`measured`] with the resolution wire selected explicitly — the
/// `resolution_compaction` block runs the same burst legs under both
/// wires for the same-commit A/B.
fn measured_wire(
    n: usize,
    seed: u64,
    burst: usize,
    batch_ms: Option<u64>,
    compact: bool,
) -> ScenarioStats {
    let run = || {
        detect_round_scenario_mode(
            n,
            seed,
            burst,
            batch_ms,
            ScenarioOpts { compact, ..ScenarioOpts::default_window(WINDOW_SECS) },
        )
    };
    let mut best = run();
    for _ in 0..2 {
        best.wall_ms = best.wall_ms.min(run().wall_ms);
    }
    best
}

/// Builds an EVV with `writers` writers and `each` updates per writer.
fn evv_with(writers: u32, each: u64) -> ExtendedVersionVector {
    let mut v = ExtendedVersionVector::new();
    for s in 1..=each {
        for w in 0..writers {
            v.record(WriterId(w), s, SimTime::from_secs(s), 1);
        }
    }
    v
}

/// Mean nanoseconds per iteration of `f`, over enough iterations to matter.
fn time_ns<T>(mut f: impl FnMut() -> T) -> f64 {
    // Warm-up & calibration.
    let start = Instant::now();
    std::hint::black_box(f());
    let once = start.elapsed().max(std::time::Duration::from_nanos(1));
    let iters = (std::time::Duration::from_millis(80).as_nanos() / once.as_nanos())
        .clamp(10, 200_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The fig9 gossip-scale block: pinned pre-flip eager baseline, live eager
/// and lazy measurements at each `sizes` point, and the per-N byte factor.
/// Returned without a trailing comma; the caller splices it into the
/// top-level object.
fn gossip_scale_json(seed: u64, sizes: &[usize]) -> String {
    let points: Vec<(ScenarioStats, ScenarioStats)> = sizes
        .iter()
        .map(|&n| {
            (
                gossip_scale_point(n, seed, GossipMode::Eager, false),
                gossip_scale_point(n, seed, GossipMode::Lazy, false),
            )
        })
        .collect();
    // Digest-batching A/B at a fixed small point (the satellite's byte
    // accounting): same multi-object workload, batching off vs on.
    let batch_off = digest_batch_scenario(40, seed, false);
    let batch_on = digest_batch_scenario(40, seed, true);
    let mut out = String::new();
    let _ = writeln!(out, "  \"gossip_scale\": {{");
    let _ = writeln!(out, "    \"window_secs\": {GOSSIP_SCALE_WINDOW_SECS},");
    let _ = writeln!(out, "    \"eager_baseline_preflip\": [");
    for (i, &(n, gm, gb)) in GOSSIP_SCALE_EAGER_BASELINE.iter().enumerate() {
        let comma = if i + 1 == GOSSIP_SCALE_EAGER_BASELINE.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "      {{\"n\": {n}, \"gossip_msgs\": {gm}, \"gossip_bytes\": {gb}, \"gossip_bytes_per_node\": {:.1}}}{comma}",
            gb as f64 / n as f64
        );
    }
    let _ = writeln!(out, "    ],");
    for (label, pick) in [("eager", 0usize), ("lazy", 1usize)] {
        let _ = writeln!(out, "    \"{label}\": [");
        for (i, pair) in points.iter().enumerate() {
            let s = if pick == 0 { &pair.0 } else { &pair.1 };
            let comma = if i + 1 == points.len() { "" } else { "," };
            let _ = writeln!(out, "      {}{comma}", s.json());
        }
        let _ = writeln!(out, "    ],");
    }
    let _ = writeln!(out, "    \"lazy_over_eager_bytes_factor\": [");
    for (i, (eager, lazy)) in points.iter().enumerate() {
        let factor = lazy.gossip_bytes as f64 / eager.gossip_bytes.max(1) as f64;
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(out, "      {{\"n\": {}, \"factor\": {factor:.3}}}{comma}", eager.n);
    }
    let _ = writeln!(out, "    ],");
    // Cross-object digest batching (opt-in `batch_digests`): eight objects
    // on one shard, N=40, lazy plane — how many detect/gossip frames the
    // piggybacked DigestGroups save and what the fatter frames cost.
    let _ = writeln!(out, "    \"digest_batching_n40_8objs\": {{");
    let _ = writeln!(out, "      \"off\": {},", batch_off.json());
    let _ = writeln!(out, "      \"on\": {},", batch_on.json());
    let _ = writeln!(
        out,
        "      \"on_over_off_detect_bytes\": {:.3},",
        batch_on.detect_bytes as f64 / batch_off.detect_bytes.max(1) as f64
    );
    let _ = writeln!(
        out,
        "      \"on_over_off_total_msgs\": {:.3}",
        batch_on.total_msgs as f64 / batch_off.total_msgs.max(1) as f64
    );
    let _ = writeln!(out, "    }}");
    out.push_str("  }");
    out
}

/// The PR-8 `resolution_compaction` block: pinned pre-compaction
/// resolution traffic at the burst N=40 point, the same legs re-measured
/// live under the legacy full-EVV wire and the compact delta wire
/// (same commit, one config flag apart), and the byte-reduction factors.
/// `bytes_reduction_vs_baseline.batched_1s_window` is the acceptance
/// number: it must be ≥ 4. Returned without a trailing comma.
fn resolution_compaction_json(seed: u64) -> String {
    let legacy_pw = measured_wire(40, seed, 8, None, false);
    let legacy_ba = measured_wire(40, seed, 8, Some(1_000), false);
    let compact_pw = measured_wire(40, seed, 8, None, true);
    let compact_ba = measured_wire(40, seed, 8, Some(1_000), true);
    let factor = |base: u64, now: u64| base as f64 / now.max(1) as f64;

    let mut out = String::new();
    let _ = writeln!(out, "  \"resolution_compaction\": {{");
    let _ = writeln!(out, "    \"baseline_precompaction\": {{");
    let _ = writeln!(out, "      \"commit\": \"f367aa9 (pre resolution-compaction)\",");
    let _ = writeln!(
        out,
        "      \"per_write_probing\": {{\"resolution_msgs\": {}, \"resolution_bytes\": {}}},",
        RESOLUTION_BASELINE_PER_WRITE.0, RESOLUTION_BASELINE_PER_WRITE.1
    );
    let _ = writeln!(
        out,
        "      \"batched_1s_window\": {{\"resolution_msgs\": {}, \"resolution_bytes\": {}}}",
        RESOLUTION_BASELINE_BATCHED.0, RESOLUTION_BASELINE_BATCHED.1
    );
    let _ = writeln!(out, "    }},");
    for (label, pw, ba) in
        [("legacy_full_wire", &legacy_pw, &legacy_ba), ("compact_wire", &compact_pw, &compact_ba)]
    {
        let _ = writeln!(out, "    \"{label}\": {{");
        let _ = writeln!(out, "      \"per_write_probing\": {},", pw.json());
        let _ = writeln!(out, "      \"batched_1s_window\": {}", ba.json());
        let _ = writeln!(out, "    }},");
    }
    let _ = writeln!(out, "    \"bytes_reduction_vs_baseline\": {{");
    let _ = writeln!(
        out,
        "      \"per_write_probing\": {:.2},",
        factor(RESOLUTION_BASELINE_PER_WRITE.1, compact_pw.resolution_bytes)
    );
    let _ = writeln!(
        out,
        "      \"batched_1s_window\": {:.2}",
        factor(RESOLUTION_BASELINE_BATCHED.1, compact_ba.resolution_bytes)
    );
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"bytes_reduction_vs_legacy_same_commit\": {{");
    let _ = writeln!(
        out,
        "      \"per_write_probing\": {:.2},",
        factor(legacy_pw.resolution_bytes, compact_pw.resolution_bytes)
    );
    let _ = writeln!(
        out,
        "      \"batched_1s_window\": {:.2}",
        factor(legacy_ba.resolution_bytes, compact_ba.resolution_bytes)
    );
    let _ = writeln!(out, "    }}");
    out.push_str("  }");
    out
}

// ---------------------------------------------------------------------------
// durability: WAL cost on the write path, recovery time, rejoin delta
// ---------------------------------------------------------------------------

/// Deployment size of the durability block — the acceptance point shared
/// with the trajectory scenarios.
const DUR_N: usize = 40;
/// Virtual window of the durability workload. Shorter than the trajectory
/// window: WAL cost scales with appends, not with how long the tail of the
/// run idles.
const DUR_WINDOW_SECS: u64 = 60;
/// Writes the crashed node misses before rejoining (virtual seconds).
const DUR_DOWNTIME_SECS: u64 = 30;
/// Group-commit window of the coalesced-sync leg: one `fdatasync` per this
/// many appends instead of one per append.
const DUR_GROUP_COMMIT: u64 = 32;
const DUR_OBJ: ObjectId = ObjectId(1);
/// The crashed-and-rejoining writer of the rejoin legs.
const DUR_CRASHED: NodeId = NodeId(3);

/// Drives the listed `writers` at the paper pace (one write every
/// `WRITE_PERIOD_SECS`, start times staggered 1 s apart) from `from` for
/// `secs` of virtual time — the trajectory workload, factored so the
/// rejoin legs can keep writing after a crash.
fn drive_paced_writers(eng: &mut SimEngine<IdeaNode>, from: SimTime, secs: u64, writers: &[u32]) {
    let end = from + SimDuration::from_secs(secs);
    let mut next_write: Vec<(u32, SimTime)> = writers
        .iter()
        .enumerate()
        .map(|(i, &w)| (w, from + SimDuration::from_secs(i as u64)))
        .collect();
    loop {
        let t = next_write.iter().map(|&(_, t)| t).min().expect("at least one writer");
        if t > end {
            break;
        }
        eng.run_until(t);
        for (w, next) in &mut next_write {
            if *next == t {
                let writer = *w;
                eng.with_node(NodeId(writer), |p, ctx| {
                    p.local_write(DUR_OBJ, 1, UpdatePayload::none(), ctx);
                });
                *next = t + SimDuration::from_secs(WRITE_PERIOD_SECS);
            }
        }
    }
    eng.run_until(end);
}

/// The durability legs' config: the trajectory whiteboard config with the
/// given WAL policy. Everything except the durability plane is identical
/// across legs, so wall-clock deltas are pure WAL cost.
fn dur_cfg(durability: DurabilityConfig) -> IdeaConfig {
    let mut cfg = IdeaConfig::whiteboard(0.95);
    cfg.durability = durability;
    cfg
}

/// One write-drain leg: the paced `DUR_N`-node workload under `cfg`.
/// Returns the settled engine and the run's wall-clock in milliseconds.
fn durability_workload(cfg: &IdeaConfig, seed: u64) -> (SimEngine<IdeaNode>, f64) {
    let nodes: Vec<IdeaNode> =
        (0..DUR_N).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[DUR_OBJ])).collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(DUR_N, seed),
        SimConfig { seed, ..Default::default() },
        nodes,
    );
    let start = Instant::now();
    let writers: Vec<u32> = (0..WRITERS.min(DUR_N) as u32).collect();
    drive_paced_writers(&mut eng, SimTime::ZERO, DUR_WINDOW_SECS, &writers);
    eng.run_until(SimTime::ZERO + SimDuration::from_secs(DUR_WINDOW_SECS + 5));
    (eng, start.elapsed().as_secs_f64() * 1e3)
}

/// Transfer-class bytes a crashed writer's re-entry costs. `fresh = false`
/// recovers the node from its WAL (rejoin fetches only the missed
/// suffix); `fresh = true` restarts it with an empty store (the
/// full-state-transfer baseline).
fn durability_rejoin_bytes(seed: u64, cfg: &IdeaConfig, fresh: bool) -> u64 {
    let (mut eng, _) = durability_workload(cfg, seed);

    // Crash: drop the in-memory node, restart from disk (or empty).
    let restarted = if fresh {
        IdeaNode::new(DUR_CRASHED, cfg.clone(), &[DUR_OBJ])
    } else {
        IdeaNode::recover(DUR_CRASHED, cfg.clone(), &[DUR_OBJ]).expect("valid config")
    };
    *eng.node_mut(DUR_CRASHED) = restarted;

    // Downtime: the node is cut off both ways (messages to a dead node
    // vanish) while the surviving writers keep the workload going.
    for i in 0..DUR_N as u32 {
        let other = NodeId(i);
        if other != DUR_CRASHED {
            eng.partition(other, DUR_CRASHED);
            eng.partition(DUR_CRASHED, other);
        }
    }
    let downtime_from = SimTime::ZERO + SimDuration::from_secs(DUR_WINDOW_SECS + 5);
    let survivors: Vec<u32> =
        (0..WRITERS.min(DUR_N) as u32).filter(|&w| NodeId(w) != DUR_CRASHED).collect();
    drive_paced_writers(&mut eng, downtime_from, DUR_DOWNTIME_SECS, &survivors);

    // Restart + rejoin: heal, delta-fetch from node 0, settle.
    for i in 0..DUR_N as u32 {
        let other = NodeId(i);
        if other != DUR_CRASHED {
            eng.heal(other, DUR_CRASHED);
            eng.heal(DUR_CRASHED, other);
        }
    }
    let before = eng.stats().payload_bytes(MsgClass::Transfer);
    eng.with_node(DUR_CRASHED, |p, ctx| p.rejoin_from(NodeId(0), ctx));
    eng.run_for(SimDuration::from_secs(10));
    eng.stats().payload_bytes(MsgClass::Transfer) - before
}

/// Total size of the files under `dir` — the on-disk WAL footprint.
fn dir_bytes(dir: &std::path::Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    let mut total = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += dir_bytes(&path);
        } else if let Ok(meta) = entry.metadata() {
            total += meta.len();
        }
    }
    total
}

/// The PR-9 `durability` block: write-drain wall clock under Off / Async /
/// Sync (identical workload, min-of-three), WAL recovery time for the
/// busiest writer, and the rejoin cost of a recovered node vs a fresh one
/// in transfer-class bytes. Returned without a trailing comma.
fn durability_json(seed: u64) -> String {
    let base = std::env::temp_dir().join(format!("idea-bench-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cfg_off = dur_cfg(DurabilityConfig::off());
    let cfg_async = dur_cfg(DurabilityConfig::buffered(base.join("async")));
    let cfg_sync = dur_cfg(DurabilityConfig::sync(base.join("sync")));
    let cfg_gc = dur_cfg(DurabilityConfig::sync_grouped(base.join("sync-gc"), DUR_GROUP_COMMIT));

    // Write-drain overhead: the identical deterministic run under each
    // mode; every repetition recreates the WAL from genesis, so min-of-3
    // wall clocks compare like with like.
    let run3 = |cfg: &IdeaConfig| {
        let (mut eng, mut best) = durability_workload(cfg, seed);
        for _ in 0..2 {
            let (again, wall) = durability_workload(cfg, seed);
            eng = again;
            best = best.min(wall);
        }
        let msgs = eng.stats().total_messages();
        (best, msgs, eng)
    };
    let (off_ms, off_msgs, _) = run3(&cfg_off);
    let (async_ms, async_msgs, _) = run3(&cfg_async);
    let (gc_ms, gc_msgs, _) = run3(&cfg_gc);
    let (sync_ms, sync_msgs, sync_eng) = run3(&cfg_sync);

    // Recovery: replay the busiest writer's WAL and compare content.
    let mut tail_records = 0usize;
    for s in 0..cfg_sync.store_shards as u32 {
        let r = ShardWal::load(&cfg_sync.durability, NodeId(0), s).expect("readable WAL");
        tail_records += r.tail.len();
    }
    let wal_bytes = dir_bytes(&base.join("sync").join("node-0"));
    let t0 = Instant::now();
    let rec = IdeaNode::recover(NodeId(0), cfg_sync.clone(), &[DUR_OBJ]).expect("valid config");
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    let bit_identical = rec.state_hash() == sync_eng.node(NodeId(0)).state_hash();
    drop(sync_eng);

    // Rejoin: the recovered node's delta fetch vs a fresh node's full
    // transfer, each on its own freshly-written WAL directory.
    let delta = durability_rejoin_bytes(
        seed,
        &dur_cfg(DurabilityConfig::sync(base.join("rejoin-delta"))),
        false,
    );
    let full = durability_rejoin_bytes(
        seed,
        &dur_cfg(DurabilityConfig::sync(base.join("rejoin-full"))),
        true,
    );
    let _ = std::fs::remove_dir_all(&base);

    let mut out = String::new();
    let _ = writeln!(out, "  \"durability\": {{");
    let _ = writeln!(out, "    \"n\": {DUR_N},");
    let _ = writeln!(out, "    \"window_secs\": {DUR_WINDOW_SECS},");
    let _ = writeln!(out, "    \"write_drain\": {{");
    for (label, wall, msgs) in [
        ("off", off_ms, off_msgs),
        ("async", async_ms, async_msgs),
        ("sync", sync_ms, sync_msgs),
        ("sync_group_commit", gc_ms, gc_msgs),
    ] {
        let _ =
            writeln!(out, "      \"{label}\": {{\"wall_ms\": {wall:.1}, \"total_msgs\": {msgs}}},");
    }
    let _ = writeln!(out, "      \"group_commit_window\": {DUR_GROUP_COMMIT},");
    let _ =
        writeln!(out, "      \"async_over_off_wall_factor\": {:.2},", async_ms / off_ms.max(1e-9));
    let _ =
        writeln!(out, "      \"sync_over_off_wall_factor\": {:.2},", sync_ms / off_ms.max(1e-9));
    let _ = writeln!(
        out,
        "      \"sync_group_commit_over_off_wall_factor\": {:.2},",
        gc_ms / off_ms.max(1e-9)
    );
    let _ = writeln!(
        out,
        "      \"sync_over_sync_group_commit_wall_factor\": {:.2},",
        sync_ms / gc_ms.max(1e-9)
    );
    // Identical message totals across modes pin the WAL as a pure side
    // effect — durability never perturbs the protocol trace.
    let _ = writeln!(
        out,
        "      \"trace_invariant\": {}",
        off_msgs == async_msgs && off_msgs == sync_msgs && off_msgs == gc_msgs
    );
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"recovery\": {{");
    let _ = writeln!(out, "      \"node\": 0,");
    let _ = writeln!(out, "      \"wal_tail_records\": {tail_records},");
    let _ = writeln!(out, "      \"wal_dir_bytes\": {wal_bytes},");
    let _ = writeln!(out, "      \"recover_ms\": {recover_ms:.2},");
    let _ = writeln!(out, "      \"bit_identical\": {bit_identical}");
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"rejoin\": {{");
    let _ = writeln!(out, "      \"downtime_secs\": {DUR_DOWNTIME_SECS},");
    let _ = writeln!(out, "      \"delta_transfer_bytes\": {delta},");
    let _ = writeln!(out, "      \"full_transfer_bytes\": {full},");
    let _ = writeln!(out, "      \"delta_over_full\": {:.3}", delta as f64 / full.max(1) as f64);
    let _ = writeln!(out, "    }}");
    out.push_str("  }");
    out
}

// ---------------------------------------------------------------------------
// fan_in: many-session latency sweep, threaded baseline vs evented server
// ---------------------------------------------------------------------------

/// Aggregate offered rate of the fan-in sweep, fixed across session counts
/// so the percentiles compare *connection-scaling* cost, not queueing: at
/// every leg the server does the same requests/second, only spread over
/// more connections.
const FAN_IN_RATE_PER_SEC: u64 = 2_000;
/// Samples per leg (5 s of measurement at the fixed rate).
const FAN_IN_REQUESTS: u64 = 10_000;
/// The paper-engine deployment served during the sweep.
const FAN_IN_OBJECT: ObjectId = ObjectId(1);

/// One fan-in leg: `sessions` concurrent connections driven by a child
/// process at the fixed aggregate rate against one server mode.
struct FanInLeg {
    sessions: usize,
    hist: LatencyHistogram,
    errors: u64,
    /// Peak `Threads:` count of the *server* process during the leg.
    peak_threads: u64,
    wall_ms: f64,
}

impl FanInLeg {
    fn json(&self) -> String {
        let us = |ns: u64| ns as f64 / 1e3;
        format!(
            "{{\"sessions\": {}, \"samples\": {}, \"errors\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"max_us\": {:.1}, \"peak_threads\": {}, \"wall_ms\": {:.0}}}",
            self.sessions,
            self.hist.count(),
            self.errors,
            us(self.hist.p50()),
            us(self.hist.p99()),
            us(self.hist.p999()),
            us(self.hist.max()),
            self.peak_threads,
            self.wall_ms,
        )
    }
}

/// `Threads:` from `/proc/self/status` (0 where /proc is unavailable).
fn current_thread_count() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Runs one leg: serves a `LockedEngine<SimEngine>` in *this* process
/// (sampling its peak thread count) and re-executes this binary as the
/// client child — two processes because the 10,000-session leg needs
/// ~10 k fds on each side of the loopback, and a single process would
/// blow through the fd ceiling holding both ends.
fn fan_in_leg(mode: ServerMode, sessions: usize, seed: u64) -> FanInLeg {
    let cfg = IdeaConfig::whiteboard(0.95);
    let nodes: Vec<IdeaNode> =
        (0..2).map(|i| IdeaNode::new(NodeId(i), cfg.clone(), &[FAN_IN_OBJECT])).collect();
    let engine = SimEngine::new(Topology::lan(2), SimConfig { seed, ..Default::default() }, nodes);
    let shared = Arc::new(LockedEngine::new(engine));
    let server = IdeaServer::bind_with(
        "127.0.0.1:0",
        shared,
        ServerConfig { mode, ..ServerConfig::default() },
    )
    .expect("bind fan-in server");

    let stop = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicU64::new(0));
    let sampler = {
        let stop = Arc::clone(&stop);
        let peak = Arc::clone(&peak);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                peak.fetch_max(current_thread_count(), Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    let started = Instant::now();
    let exe = std::env::current_exe().expect("current_exe");
    let output = std::process::Command::new(exe)
        .args([
            "--fan-in-client",
            &server.local_addr().to_string(),
            &sessions.to_string(),
            &FAN_IN_RATE_PER_SEC.to_string(),
            &FAN_IN_REQUESTS.to_string(),
        ])
        .output()
        .expect("spawn fan-in client child");
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    stop.store(true, Ordering::Relaxed);
    let _ = sampler.join();
    if !output.status.success() {
        panic!(
            "fan-in client failed ({} sessions, {mode:?}): {}",
            sessions,
            String::from_utf8_lossy(&output.stderr)
        );
    }

    let stdout = String::from_utf8_lossy(&output.stdout);
    let mut hist = LatencyHistogram::new();
    let mut errors = u64::MAX;
    for line in stdout.lines() {
        if let Some(encoded) = line.strip_prefix("FANIN_HIST ") {
            hist = LatencyHistogram::decode(encoded.trim()).expect("child histogram");
        } else if line.starts_with("FANIN ") {
            errors = line
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix("errors="))
                .and_then(|v| v.parse().ok())
                .expect("child error count");
        }
    }
    assert!(errors != u64::MAX, "child reported no error count:\n{stdout}");
    FanInLeg { sessions, hist, errors, peak_threads: peak.load(Ordering::Relaxed), wall_ms }
}

/// Per-connection client state in the fan-in child.
struct FanInSession {
    stream: TcpStream,
    in_buf: Vec<u8>,
    in_start: usize,
    dead: bool,
}

/// The child role behind the hidden `--fan-in-client addr sessions rate
/// requests` invocation: opens `sessions` connections, paces `requests`
/// Peek commands round-robin at the aggregate `rate`, and prints the
/// latency histogram (nanoseconds) plus an error count for the parent to
/// decode. Responses are collected with the same vendored poller the
/// server uses — one thread regardless of session count.
fn fan_in_client(args: &[String]) -> ! {
    let addr: SocketAddr = args[0].parse().expect("server address");
    let sessions: usize = args[1].parse().expect("session count");
    let rate: u64 = args[2].parse().expect("rate");
    let requests: u64 = args[3].parse().expect("request count");

    let mut poll = mio::Poll::new().expect("client poller");
    let mut conns: Vec<FanInSession> = Vec::with_capacity(sessions);
    let mut errors = 0u64;
    for i in 0..sessions {
        let mut stream = TcpStream::connect(addr).expect("connect session");
        let _ = stream.set_nodelay(true);
        let hello = read_frame(&mut stream).expect("handshake").expect("greeting");
        assert!(matches!(hello.payload, FramePayload::Hello { .. }), "{hello:?}");
        stream.set_nonblocking(true).expect("nonblocking session");
        poll.registry()
            .register(&stream, mio::Token(i), mio::Interest::READABLE)
            .expect("register session");
        conns.push(FanInSession { stream, in_buf: Vec::new(), in_start: 0, dead: false });
    }

    // One Peek per request, round-robin over the sessions; request ids are
    // globally unique so in-flight requests correlate through one map.
    let command_bytes = |request_id: u64| {
        frame_bytes(&Frame {
            request_id,
            node: NodeId(0),
            payload: FramePayload::Command(Command::Peek { object: FAN_IN_OBJECT }),
        })
        .expect("encode Peek")
    };
    let interval = Duration::from_nanos(1_000_000_000 / rate);
    let mut hist = LatencyHistogram::new();
    let mut in_flight: HashMap<u64, Instant> = HashMap::new();
    let mut sent = 0u64;
    let mut completed = 0u64;
    let mut events = mio::Events::with_capacity(1024);
    let started = Instant::now();
    let deadline = started + interval * requests as u32 + Duration::from_secs(20);

    while (completed + errors < requests || sent < requests) && Instant::now() < deadline {
        // Send everything due by now (the poll below has millisecond
        // granularity; a wake may owe several sub-millisecond slots).
        while sent < requests && started.elapsed() >= interval * sent as u32 {
            let id = sent + 1;
            let conn = &mut conns[(sent % sessions as u64) as usize];
            sent += 1;
            if conn.dead {
                errors += 1;
                continue;
            }
            let bytes = command_bytes(id);
            match conn.stream.write_all(&bytes) {
                Ok(()) => {
                    in_flight.insert(id, Instant::now());
                }
                Err(_) => {
                    conn.dead = true;
                    errors += 1;
                }
            }
        }
        let timeout = if sent < requests {
            let next_due = started + interval * sent as u32;
            next_due.saturating_duration_since(Instant::now())
        } else {
            Duration::from_millis(50)
        };
        if poll.poll(&mut events, Some(timeout)).is_err() {
            continue;
        }
        for event in events.iter() {
            let mio::Token(i) = event.token();
            let conn = &mut conns[i];
            if conn.dead {
                continue;
            }
            // Drain the socket, then every complete response frame.
            let mut scratch = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => conn.in_buf.extend_from_slice(&scratch[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            loop {
                match parse_frame(&conn.in_buf[conn.in_start..]) {
                    Ok(Some((frame, used))) => {
                        conn.in_start += used;
                        if let Some(t0) = in_flight.remove(&frame.request_id) {
                            hist.record(t0.elapsed().as_nanos() as u64);
                            completed += 1;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.in_start == conn.in_buf.len() {
                conn.in_buf.clear();
                conn.in_start = 0;
            }
        }
    }
    // Requests still unanswered at the deadline are failures.
    errors += in_flight.len() as u64;

    println!("FANIN sessions={sessions} sent={sent} completed={completed} errors={errors}");
    println!("FANIN_HIST {}", hist.encode());
    std::process::exit(0);
}

/// The `fan_in` JSON block: the threaded baseline at the session counts it
/// can reach, the evented server through the ten-thousand-session leg, and
/// the headline guard (evented p99 at 100 sessions vs threaded).
/// Returned without a trailing comma.
fn fan_in_json(seed: u64, threaded_legs: &[usize], evented_legs: &[usize]) -> String {
    let run = |mode: ServerMode, legs: &[usize]| -> Vec<FanInLeg> {
        legs.iter()
            .map(|&sessions| {
                eprintln!("fan_in: {mode:?} x {sessions} sessions...");
                fan_in_leg(mode, sessions, seed)
            })
            .collect()
    };
    let threaded = run(ServerMode::Threaded, threaded_legs);
    let evented = run(ServerMode::Evented, evented_legs);
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);

    let mut out = String::new();
    let _ = writeln!(out, "  \"fan_in\": {{");
    let _ = writeln!(out, "    \"rate_per_sec\": {FAN_IN_RATE_PER_SEC},");
    let _ = writeln!(out, "    \"requests_per_leg\": {FAN_IN_REQUESTS},");
    let _ = writeln!(out, "    \"cores\": {cores},");
    for (label, legs) in [("threaded", &threaded), ("evented", &evented)] {
        let _ = writeln!(out, "    \"{label}\": [");
        for (i, leg) in legs.iter().enumerate() {
            let comma = if i + 1 == legs.len() { "" } else { "," };
            let _ = writeln!(out, "      {}{comma}", leg.json());
        }
        let _ = writeln!(out, "    ],");
    }
    // The acceptance guard: at 100 sessions (a count both servers reach
    // comfortably) the evented p99 must not be worse than the baseline's.
    let guard = |legs: &[FanInLeg]| {
        legs.iter().find(|l| l.sessions == 100).map(|l| l.hist.p99() as f64 / 1e3)
    };
    match (guard(&threaded), guard(&evented)) {
        (Some(t), Some(e)) => {
            let _ = writeln!(out, "    \"p99_at_100_sessions\": {{");
            let _ = writeln!(out, "      \"threaded_us\": {t:.1},");
            let _ = writeln!(out, "      \"evented_us\": {e:.1},");
            let _ = writeln!(out, "      \"evented_over_threaded\": {:.2}", e / t.max(1e-9));
            let _ = writeln!(out, "    }}");
        }
        _ => {
            let _ = writeln!(out, "    \"p99_at_100_sessions\": null");
        }
    }
    out.push_str("  }");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // The hidden child role behind the fan-in sweep — must dispatch before
    // anything else (it is re-executed per leg).
    if let Some(pos) = args.iter().position(|a| a == "--fan-in-client") {
        fan_in_client(&args[pos + 1..]);
    }
    let seed = idea_bench::seed_from_args();
    let small = args.iter().any(|a| a == "--small");
    let gossip_scale_only = args.iter().any(|a| a == "--gossip-scale");
    let fan_in_only = args.iter().any(|a| a == "--fan-in");
    let burst_only = args.iter().any(|a| a == "--burst");
    let durability_only = args.iter().any(|a| a == "--durability");

    // CI `crash-recovery-smoke`: just the durability block (write-drain
    // overhead, recovery time, rejoin delta vs full), written as a
    // self-contained BENCH_hotpath.json (the full harness overwrites it on
    // the next unrestricted run).
    if durability_only {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"seed\": {seed},");
        json.push_str(&durability_json(seed));
        json.push_str("\n}\n");
        std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
        print!("{json}");
        return;
    }

    // CI `perf-smoke`: just the burst N=40 resolution-compaction A/B,
    // written as a self-contained BENCH_hotpath.json (the full harness
    // overwrites it on the next unrestricted run).
    if burst_only {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"seed\": {seed},");
        json.push_str(&resolution_compaction_json(seed));
        json.push_str("\n}\n");
        std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
        print!("{json}");
        return;
    }

    // CI `gossip-scale` smoke: just the N=160 eager/lazy sweep, written as
    // a self-contained BENCH_hotpath.json (the full harness overwrites it
    // on the next unrestricted run).
    if gossip_scale_only {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"seed\": {seed},");
        json.push_str(&gossip_scale_json(seed, &[160]));
        json.push_str("\n}\n");
        std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
        print!("{json}");
        return;
    }

    // CI `fan-in-smoke`: the 10/100/1,000-session legs against both server
    // modes, written as a self-contained BENCH_hotpath.json (the full
    // harness additionally runs the 10,000-session evented leg).
    if fan_in_only {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"seed\": {seed},");
        json.push_str(&fan_in_json(seed, &[10, 100, 1_000], &[10, 100, 1_000]));
        json.push_str("\n}\n");
        std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
        print!("{json}");
        return;
    }

    // ---- micro: pairwise triple + vector shipping cost --------------------
    let a = evv_with(WRITERS as u32, 250);
    let mut b = evv_with(WRITERS as u32, 250);
    for w in 0..WRITERS as u32 {
        let next = b.count(WriterId(w)) + 1;
        b.record(WriterId(w), next, SimTime::from_secs(251), 1);
    }
    let triple_ns = time_ns(|| a.triple_against(&b));
    let clone_ns = time_ns(|| a.clone());
    let summary_ns = time_ns(|| a.summary(8));

    // ---- scenarios --------------------------------------------------------
    // The N=80 scale point runs even in the CI smoke so the per-category
    // byte split (detect vs gossip vs resolution) of the gossip-fanout
    // ROADMAP item has a tracked trajectory.
    let sizes: &[usize] = if small { &[10, 80] } else { &[10, 40, 80] };
    let scenarios: Vec<ScenarioStats> = sizes.iter().map(|&n| measured(n, seed, 1, None)).collect();

    // Burst workload at N=40: per-write probing vs a 1 s coalescing window.
    let (burst_unbatched, burst_batched) = if small {
        (None, None)
    } else {
        (Some(measured(40, seed, 8, None)), Some(measured(40, seed, 8, Some(1_000))))
    };

    // Sharded-vs-unsharded drain on the threaded runtime (per-node shard
    // workers; see `sharded_drain_scenario`). The smoke uses a smaller
    // cluster so CI exercises the parallel path without the thread storm.
    let (drain_n, drain_rounds) = if small { (24, 3) } else { (80, 6) };
    let drain_unsharded =
        sharded_drain_scenario(drain_n, 1, seed, drain_rounds, DrainRoute::Closure);
    let drain_sharded = sharded_drain_scenario(drain_n, 4, seed, drain_rounds, DrainRoute::Closure);
    // Client-layer overhead: the identical sharded drain with writes routed
    // as typed `Command`s through `EngineHandle::submit` instead of raw
    // closures — pins what the command surface costs on the hot write path.
    let drain_session = sharded_drain_scenario(drain_n, 4, seed, drain_rounds, DrainRoute::Session);
    // Loopback-TCP drain: the identical workload submitted through
    // RemoteEngine → IdeaServer — pins what serving costs on the write path.
    let drain_remote = sharded_drain_scenario(drain_n, 4, seed, drain_rounds, DrainRoute::Remote);
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"baseline\": {{");
    let _ = writeln!(json, "    \"commit\": \"bafd422 (pre wire-compaction)\",");
    let _ = writeln!(json, "    \"micro\": {{");
    let _ = writeln!(json, "      \"triple_against_1000_ns\": {BASELINE_TRIPLE_NS:.1},");
    let _ = writeln!(json, "      \"evv_clone_1000_ns\": {BASELINE_CLONE_NS:.1}");
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"scenarios\": [");
    for (i, &(n, dm, db, gm, gb, tm, w)) in BASELINE_SCENARIOS.iter().enumerate() {
        // Per-class resolution bytes were not recorded pre-compaction.
        let s = ScenarioStats {
            n,
            detect_msgs: dm,
            detect_bytes: db,
            gossip_msgs: gm,
            gossip_bytes: gb,
            resolution_msgs: 0,
            resolution_bytes: 0,
            total_msgs: tm,
            wall_ms: w,
        };
        let comma = if i + 1 == BASELINE_SCENARIOS.len() { "" } else { "," };
        let _ = writeln!(json, "      {}{comma}", s.json());
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"current\": {{");
    let _ = writeln!(json, "    \"micro\": {{");
    let _ = writeln!(json, "      \"triple_against_1000_ns\": {triple_ns:.1},");
    let _ = writeln!(json, "      \"evv_clone_1000_ns\": {clone_ns:.1},");
    // The clone drifted from the 249 ns pre-compaction baseline when the
    // wire-compaction PR added the per-writer counter cache to
    // `ExtendedVersionVector`: every clone now copies the cache alongside
    // the history. That cache is also what cut `triple_against` ~6x, and
    // the detect hot path ships `VvSummary` (not clones), so the trade is
    // deliberate — annotated here so the drift reads as understood, not as
    // an unnoticed regression.
    let _ = writeln!(
        json,
        "      \"evv_clone_drift_note\": \"clone copies the counter cache added by the wire-compaction PR; the cache funds the triple_against speedup and clones are off the detect hot path\","
    );
    let _ = writeln!(json, "      \"summary_encode_1000_ns\": {summary_ns:.1}");
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"scenarios\": [");
    for (i, s) in scenarios.iter().enumerate() {
        let comma = if i + 1 == scenarios.len() { "" } else { "," };
        let _ = writeln!(json, "      {}{comma}", s.json());
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    if let (Some(un), Some(ba)) = (&burst_unbatched, &burst_batched) {
        let _ = writeln!(json, "  \"burst_n40\": {{");
        let _ = writeln!(json, "    \"per_write_probing\": {},", un.json());
        let _ = writeln!(json, "    \"batched_1s_window\": {}", ba.json());
        let _ = writeln!(json, "  }},");
    }
    // Resolution wire-compaction A/B at the same burst point (skipped in
    // the smoke: the burst legs above already cover the compact wire
    // there, and `--burst` is the dedicated CI smoke of this block).
    if !small {
        json.push_str(&resolution_compaction_json(seed));
        json.push_str(",\n");
    }
    // WAL durability costs (skipped in the smoke: `--durability` is the
    // dedicated CI smoke of this block).
    if !small {
        json.push_str(&durability_json(seed));
        json.push_str(",\n");
    }
    // Threaded drain: same backlogged workload on 1 vs 4 shard workers per
    // node. The speedup factor is only meaningful with spare cores — the
    // recorded `cores` qualifies it.
    {
        let speedup = drain_unsharded.wall_ms / drain_sharded.wall_ms.max(1e-9);
        let _ = writeln!(json, "  \"sharded_drain\": {{");
        let _ = writeln!(json, "    \"cores\": {cores},");
        let _ = writeln!(json, "    \"rounds\": {drain_rounds},");
        let _ = writeln!(json, "    \"shards_1\": {},", drain_unsharded.json());
        let _ = writeln!(json, "    \"shards_4\": {},", drain_sharded.json());
        let _ = writeln!(json, "    \"wall_speedup_factor\": {speedup:.2}");
        let _ = writeln!(json, "  }},");
    }
    // Command-layer cost on the same sharded drain: session-routed writes
    // (Command::Write via EngineHandle) vs closure-injected writes. A
    // factor near 1.0 means the typed surface is free on the hot path.
    {
        let factor = drain_session.wall_ms / drain_sharded.wall_ms.max(1e-9);
        let _ = writeln!(json, "  \"client_overhead\": {{");
        let _ = writeln!(json, "    \"cores\": {cores},");
        let _ = writeln!(json, "    \"rounds\": {drain_rounds},");
        let _ = writeln!(json, "    \"closure_routed\": {},", drain_sharded.json());
        let _ = writeln!(json, "    \"session_routed\": {},", drain_session.json());
        let _ = writeln!(json, "    \"session_over_closure_factor\": {factor:.2}");
        let _ = writeln!(json, "  }},");
    }
    // Served-system cost on the same drain: loopback-TCP session submits
    // (RemoteEngine → IdeaServer → shard mailboxes) vs in-process session
    // submits. The engine does identical protocol work; the factor is the
    // framing + socket overhead of the write drain.
    {
        let factor = drain_remote.wall_ms / drain_session.wall_ms.max(1e-9);
        let _ = writeln!(json, "  \"remote_drain\": {{");
        let _ = writeln!(json, "    \"cores\": {cores},");
        let _ = writeln!(json, "    \"rounds\": {drain_rounds},");
        let _ = writeln!(json, "    \"in_process_session\": {},", drain_session.json());
        let _ = writeln!(json, "    \"loopback_tcp_session\": {},", drain_remote.json());
        let _ = writeln!(json, "    \"remote_over_local_factor\": {factor:.2},");
        // Recorded factors for this leg have ranged 0.83–1.18 across runs
        // of the identical workload (0.95 was quoted in ROADMAP/CHANGES,
        // 1.18 in a later BENCH snapshot): the settle detector samples
        // wall time, so a single lucky or unlucky drain swings the ratio
        // ~±20% around 1. The honest reading is "within drain-loop noise
        // of free", not any one decimal — the annotation keeps the next
        // reader from chasing whichever value the last run happened to pin.
        let _ = writeln!(
            json,
            "    \"factor_note\": \"single-run wall-clock ratio; observed 0.83-1.18 across identical runs, so read as ~1.0 (framing within drain-loop noise), not as a trend\""
        );
        let _ = writeln!(json, "  }},");
    }
    // Headline comparison at the acceptance point (N=40, paper workload).
    if let Some(cur) = scenarios.iter().find(|s| s.n == 40) {
        let base = &BASELINE_SCENARIOS[1];
        let bytes_factor = base.2 as f64 / cur.detect_bytes.max(1) as f64;
        let wall_factor = base.6 / cur.wall_ms.max(1e-9);
        let _ = writeln!(json, "  \"n40_vs_baseline\": {{");
        let _ = writeln!(json, "    \"detect_bytes_reduction_factor\": {bytes_factor:.2},");
        let _ = writeln!(json, "    \"wall_clock_speedup_factor\": {wall_factor:.2}");
        let _ = writeln!(json, "  }},");
    }
    // fig9 extension: eager vs lazy gossip traffic at N ∈ {160, 320, 640}
    // ({160} in the CI smoke), per-node bytes being the scale-out number.
    let scale_sizes: &[usize] = if small { &[160] } else { &[160, 320, 640] };
    json.push_str(&gossip_scale_json(seed, scale_sizes));
    json.push_str(",\n");
    // Fan-in latency sweep: threaded baseline vs evented server. The
    // threaded server pays 2 threads + 2 fds per connection, so its legs
    // stop at 1,000 sessions (10,000 would need 20k fds in this process);
    // the evented sweep runs through 10,000 in the full harness.
    let (fan_threaded, fan_evented): (&[usize], &[usize]) = if small {
        (&[10, 100], &[10, 100, 1_000])
    } else {
        (&[10, 100, 1_000], &[10, 100, 1_000, 10_000])
    };
    json.push_str(&fan_in_json(seed, fan_threaded, fan_evented));
    json.push_str(",\n");
    let _ = writeln!(json, "  \"triple_speedup_factor\": {:.1}", BASELINE_TRIPLE_NS / triple_ns);
    json.push_str("}\n");

    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    print!("{json}");
}
