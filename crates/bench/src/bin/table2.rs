//! Regenerates Table 2: the two-phase breakdown of active resolution.

use idea_workload::experiments::table2;

fn main() {
    let result = table2::run(idea_bench::seed_from_args());
    println!("{}", table2::report(&result));
    println!(
        "shape holds (phase1 << phase2, phase2 in paper band): {}",
        table2::shape_holds(&result)
    );
}
