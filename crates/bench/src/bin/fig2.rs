//! Regenerates Figure 2 (measured): the consistency/overhead trade-off.

use idea_workload::experiments::fig2::{self, TradeoffConfig};

fn main() {
    let rows =
        fig2::run(&TradeoffConfig { seed: idea_bench::seed_from_args(), ..Default::default() });
    println!("{}", fig2::report(&rows));
    println!("shape holds (optimistic < IDEA < strong): {}", fig2::shape_holds(&rows));
}
