//! Ablation A2: sweep TTL vs rollback detection of a bottom-layer writer.

use idea_workload::experiments::ablate;

fn main() {
    let rows = ablate::run_rollback(idea_bench::seed_from_args());
    println!("{}", ablate::report_rollback(&rows));
}
