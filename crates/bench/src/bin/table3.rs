//! Regenerates Table 3: background-resolution message overhead.

use idea_workload::experiments::table3;

fn main() {
    let result = table3::run(idea_bench::seed_from_args());
    println!("{}", table3::report(&result));
    println!(
        "shape holds (ratio, stable round cost, dial-up argument): {}",
        table3::shape_holds(&result)
    );
}
