//! Regenerates Figure 7(a)/(b): the adaptive interface under a hint level.

use idea_workload::experiments::fig7::{self, FIG7A, FIG7B};

fn main() {
    let hint: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0.95);
    let anchors = if (hint - 0.85).abs() < 0.01 { FIG7B } else { FIG7A };
    let result = fig7::run(anchors.hint, idea_bench::seed_from_args());
    println!("{}", fig7::report(&anchors, &result));
    println!(
        "shape holds (min just below hint, resolutions fired): {}",
        fig7::shape_holds(&anchors, &result, 0.10)
    );
}
