//! Ablation A1: top-layer coverage vs activity skew.

use idea_workload::experiments::ablate;

fn main() {
    let rows = ablate::run_coverage(40);
    println!("{}", ablate::report_coverage(&rows));
}
