//! Regenerates Figure 10: the automatic system at 20 s vs 40 s periods.

use idea_workload::experiments::fig10;

fn main() {
    let result = fig10::run(idea_bench::seed_from_args());
    println!("{}", fig10::report(&result));
    println!("shape holds (20 s period dominates): {}", fig10::shape_holds(&result));
}
