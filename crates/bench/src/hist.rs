//! A fixed-bucket latency histogram: bounded memory, O(1) record,
//! mergeable, with percentile read-out — what the fan-in benchmark uses to
//! track p50/p99/p999 across tens of thousands of samples (and to ship a
//! child process's measurements to its parent as text).
//!
//! Bucketing is HDR-style log-linear: one *major* per power of two of the
//! value, split into `MINORS_PER_MAJOR` linear *minors* — so bucket
//! width tracks magnitude and relative error is bounded by
//! `1 / MINORS_PER_MAJOR` (≈3 % here) at every scale, from nanoseconds to
//! seconds, without configuring a range up front.

/// Linear subdivisions of each power-of-two major bucket. 32 minors bound
/// the quantization error of any recorded value to under ~3.2 %.
const MINORS_PER_MAJOR: usize = 32;

/// log2 of [`MINORS_PER_MAJOR`]: the first major with linear subdivision.
const FIRST_MAJOR: usize = 5;

/// 32 exact buckets for values below [`MINORS_PER_MAJOR`], then 32 linear
/// minors for each power-of-two major 5..=63 — contiguous over all `u64`.
const BUCKETS: usize = MINORS_PER_MAJOR + (64 - FIRST_MAJOR) * MINORS_PER_MAJOR;

/// A log-linear histogram over `u64` samples (typically nanoseconds).
///
/// `record` is O(1) with no allocation; `merge` adds another histogram's
/// counts (the cross-process aggregation path); `percentile` reports the
/// upper bound of the bucket holding the p-th sample — an over-estimate by
/// at most one bucket width (≈3 % relative).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; BUCKETS], total: 0, max: 0 }
    }

    /// The bucket index for `value`: log2 major, linear minor.
    fn bucket(value: u64) -> usize {
        // Values below one full minor row are their own (exact) buckets.
        if value < MINORS_PER_MAJOR as u64 {
            return value as usize;
        }
        let major = 63 - value.leading_zeros() as usize;
        let shift = major - FIRST_MAJOR;
        let minor = (value >> shift) as usize - MINORS_PER_MAJOR;
        (major - FIRST_MAJOR + 1) * MINORS_PER_MAJOR + minor
    }

    /// The largest value a bucket covers (inclusive).
    fn bucket_upper(index: usize) -> u64 {
        if index < MINORS_PER_MAJOR {
            return index as u64;
        }
        let major = index / MINORS_PER_MAJOR - 1 + FIRST_MAJOR;
        let minor = index % MINORS_PER_MAJOR;
        let shift = major - FIRST_MAJOR;
        // u128: the top bucket's exclusive bound is 2^64 itself.
        let upper = (((MINORS_PER_MAJOR + minor + 1) as u128) << shift) - 1;
        upper.min(u64::MAX as u128) as u64
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The largest sample recorded (exact, not bucketed). 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the ⌈q·count⌉-th smallest sample (the exact
    /// `max` for the top bucket). 0 when empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ⌈q·total⌉, but at least 1: p0 is the smallest sample's bucket.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`LatencyHistogram::percentile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Adds every sample of `other` into `self` — bucket-exact, since both
    /// sides share the fixed bucket layout.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// Sparse text encoding (`total;max;index:count,index:count,...`) for
    /// handing a histogram across a process boundary on one line.
    #[must_use]
    pub fn encode(&self) -> String {
        let cells: Vec<String> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| format!("{index}:{count}"))
            .collect();
        format!("{};{};{}", self.total, self.max, cells.join(","))
    }

    /// Parses [`LatencyHistogram::encode`] output. `None` on any
    /// malformed field.
    #[must_use]
    pub fn decode(text: &str) -> Option<Self> {
        let mut parts = text.splitn(3, ';');
        let total: u64 = parts.next()?.parse().ok()?;
        let max: u64 = parts.next()?.parse().ok()?;
        let cells = parts.next()?;
        let mut hist = LatencyHistogram::new();
        hist.total = total;
        hist.max = max;
        if !cells.is_empty() {
            for cell in cells.split(',') {
                let (index, count) = cell.split_once(':')?;
                let index: usize = index.parse().ok()?;
                if index >= BUCKETS {
                    return None;
                }
                hist.counts[index] = count.parse().ok()?;
            }
        }
        if hist.counts.iter().sum::<u64>() != total {
            return None;
        }
        Some(hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small values are exact: one bucket per integer below 32.
    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.p50(), 15);
        assert_eq!(h.percentile(1.0), 31);
    }

    /// Percentile math pinned on a known uniform distribution: 1..=10_000
    /// recorded once each — every quantile lands within one bucket width
    /// (~3.2 %) of the true order statistic.
    #[test]
    fn percentiles_on_uniform_distribution() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expected) in [(0.50, 5_000u64), (0.99, 9_900), (0.999, 9_990)] {
            let got = h.percentile(q);
            assert!(got >= expected, "p{q} under-reported: {got} < {expected}");
            let error = (got - expected) as f64 / expected as f64;
            assert!(error <= 0.04, "p{q} off by {error:.3}: {got} vs {expected}");
        }
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.percentile(1.0), 10_000, "p100 is the exact max");
    }

    /// A two-mode distribution: 99 fast samples and 1 slow one. p50 sits
    /// in the fast mode, p99 and p999 report the slow outlier.
    #[test]
    fn percentiles_on_bimodal_distribution() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        assert!(h.p50() >= 100 && h.p50() <= 103, "p50 = {}", h.p50());
        assert_eq!(h.p99(), 100_u64.max(h.percentile(0.99)));
        assert_eq!(h.p999(), 1_000_000, "the outlier is the top sample (exact max)");
    }

    /// Merging equals recording the union, bucket for bucket.
    #[test]
    fn merge_is_the_union() {
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [1u64, 50, 700, 3_000, 12_345] {
            left.record(v);
            both.record(v);
        }
        for v in [9u64, 80, 900, 65_000, 1 << 40] {
            right.record(v);
            both.record(v);
        }
        left.merge(&right);
        assert_eq!(left.count(), both.count());
        assert_eq!(left.max(), both.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(left.percentile(q), both.percentile(q), "q = {q}");
        }
    }

    /// Encode → decode is lossless, including the exact max and counts.
    #[test]
    fn encode_decode_round_trips() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 31, 32, 1_000, 123_456_789, u64::MAX] {
            h.record(v);
        }
        let decoded = LatencyHistogram::decode(&h.encode()).expect("round trip");
        assert_eq!(decoded.count(), h.count());
        assert_eq!(decoded.max(), h.max());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(decoded.percentile(q), h.percentile(q));
        }

        assert!(LatencyHistogram::decode("garbage").is_none());
        assert!(LatencyHistogram::decode("3;9;0:1").is_none(), "count mismatch");
        assert!(LatencyHistogram::decode("1;9;9999:1").is_none(), "bucket out of range");
        let empty = LatencyHistogram::decode("0;0;").expect("empty histogram");
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.p99(), 0);
    }

    /// Every `u64` lands in a bucket whose bounds contain it, and bucket
    /// upper bounds are monotone — the structural invariant behind the
    /// percentile walk.
    #[test]
    fn bucket_bounds_contain_their_values() {
        let probes: Vec<u64> = (0..63)
            .flat_map(|shift| {
                let base = 1u64 << shift;
                [base - 1, base, base + 1, base + base / 3]
            })
            .chain([0, u64::MAX])
            .collect();
        for &v in &probes {
            let b = LatencyHistogram::bucket(v);
            assert!(v <= LatencyHistogram::bucket_upper(b), "{v} above its bucket {b}");
            if b > 0 {
                assert!(
                    v > LatencyHistogram::bucket_upper(b - 1),
                    "{v} also fits the previous bucket {b}"
                );
            }
        }
        for b in 1..BUCKETS {
            assert!(LatencyHistogram::bucket_upper(b) > LatencyHistogram::bucket_upper(b - 1));
        }
    }
}
