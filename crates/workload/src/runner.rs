//! Experiment runners: the paper's workloads wired onto the simulator.
//!
//! Both runners replay §6's synthetic workload: a handful of concurrent
//! writers, "uniform distribution of the updating frequency", one update
//! per writer per `write_period` (5 s in the paper), all updates mutually
//! conflicting. Writers are staggered by one second so divergence
//! accumulates smoothly rather than in lock-step bursts.

use idea_apps::{BookingServer, WhiteboardClient};
use idea_core::client::Session;
use idea_core::{ConsistencySpec, IdeaConfig, MaxBounds, ResolutionRecord, Weights};
use idea_net::{MsgClass, NetStats, SimConfig, SimEngine, Topology};
use idea_types::{MessageSizeModel, NodeId, ObjectId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One sample of the consistency series.
///
/// The paper samples every 5 s with timing uncorrelated to writes, so its
/// plots catch the brief sub-hint dips (resolution completes "in less than
/// one second"). Our simulator's samples would otherwise align exactly with
/// the write grid and miss them, so `worst` is the *minimum* level observed
/// over the preceding sample window (polled at 1 s granularity) — the same
/// quantity the paper's asynchronous sampling captures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Seconds since the measurement window opened.
    pub t_secs: f64,
    /// "View from the user": the worst writer level observed in the window.
    pub worst: f64,
    /// "System average": mean level over the writers at the sample instant.
    pub average: f64,
}

/// Sub-sampling granularity for the window minimum. Off the integer-second
/// write grid so polls land inside the short (< 1 s) sub-hint dip between a
/// detection round completing and its resolution finishing.
const POLL: SimDuration = SimDuration::from_millis(333);

/// Configuration of a hint-based white-board run (Figures 7 and 8).
#[derive(Debug, Clone)]
pub struct HintRunConfig {
    /// Total nodes (paper: 40 PlanetLab nodes).
    pub nodes: usize,
    /// Concurrent writers forming the top layer (paper: 4).
    pub writers: usize,
    /// Initial hint level.
    pub hint: f64,
    /// Warm-up before the measurement window (top-layer formation).
    pub warmup: SimDuration,
    /// Measurement window length (paper: 100 s / 200 s).
    pub duration: SimDuration,
    /// Per-writer update period (paper: 5 s).
    pub write_period: SimDuration,
    /// Sampling period (paper: 5 s).
    pub sample_period: SimDuration,
    /// Formula-1 saturation bounds (calibration knob).
    pub bounds: MaxBounds,
    /// RNG seed.
    pub seed: u64,
    /// `(offset from window start, new hint)` resets — Figure 8 resets
    /// 95 % → 90 % at offset 100 s.
    pub hint_resets: Vec<(SimDuration, f64)>,
}

impl Default for HintRunConfig {
    fn default() -> Self {
        HintRunConfig {
            nodes: 40,
            writers: 4,
            hint: 0.95,
            warmup: SimDuration::from_secs(20),
            duration: SimDuration::from_secs(100),
            write_period: SimDuration::from_secs(5),
            sample_period: SimDuration::from_secs(5),
            // Calibrated to the workload's metadata scale: one stroke's
            // ASCII sum is ~115, so the numerical member saturates only
            // after ~9 unmatched strokes — the same errors-to-maxima ratio
            // as the paper's worked example (gaps of 3 against a max of 10).
            bounds: MaxBounds::new(1_000.0, 40.0, SimDuration::from_secs(60)),
            seed: 7,
            hint_resets: Vec::new(),
        }
    }
}

/// Result of a hint-based run.
#[derive(Debug, Clone)]
pub struct HintRunResult {
    /// The sampled series over the measurement window.
    pub series: Vec<SamplePoint>,
    /// Minimum of the worst-writer curve (the paper's "lowest consistency
    /// level for users").
    pub min_worst: f64,
    /// Mean of the system-average curve.
    pub mean_average: f64,
    /// Resolution rounds completed during the window (all initiators).
    pub resolutions: u64,
    /// Resolution records from all writers (window only).
    pub records: Vec<ResolutionRecord>,
    /// Resolution control+transfer messages in the window.
    pub resolution_messages: u64,
    /// Detection messages in the window.
    pub detect_messages: u64,
    /// Detection payload bytes in the window (tracks the compact-wire
    /// economy: divergence-sized summaries/deltas, not full histories).
    pub detect_bytes: u64,
}

/// Runs a hint-based white-board experiment (the §6.1 setup).
pub fn run_hint(cfg: &HintRunConfig) -> HintRunResult {
    let board = ObjectId(1);
    let mut idea_cfg = IdeaConfig::whiteboard(cfg.hint);
    idea_cfg.bounds = cfg.bounds;
    // The §6.1 experiments weigh the members equally (the worked example's
    // setting); §5.1's order-heavy preset is exercised by the app tests.
    idea_cfg.weights = Weights::EQUAL;
    let clients: Vec<WhiteboardClient> = (0..cfg.nodes)
        .map(|i| WhiteboardClient::with_config(NodeId(i as u32), board, idea_cfg.clone()))
        .collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(cfg.nodes, cfg.seed),
        SimConfig { seed: cfg.seed, ..Default::default() },
        clients,
    );

    let start = SimTime::ZERO + cfg.warmup;
    let end = start + cfg.duration;
    let mut next_write: Vec<SimTime> =
        (0..cfg.writers).map(|w| SimTime::ZERO + SimDuration::from_secs(w as u64)).collect();
    let mut next_sample = start;
    let mut next_poll = start;
    let mut window_worst = 1.0f64;
    let mut resets = cfg.hint_resets.clone();
    resets.sort_by_key(|(off, _)| *off);
    let mut reset_idx = 0;

    let mut series: Vec<SamplePoint> = Vec::new();
    let mut window_stats: Option<NetStats> = None;
    let mut pre_window_res: u64 = 0;

    loop {
        // Next event: earliest of writes, polls, samples, resets.
        let mut t = next_sample.min(next_poll);
        for &w in &next_write {
            t = t.min(w);
        }
        if reset_idx < resets.len() {
            t = t.min(start + resets[reset_idx].0);
        }
        if t > end {
            break;
        }
        eng.run_until(t);

        if window_stats.is_none() && t >= start {
            window_stats = Some(eng.stats().clone());
            pre_window_res = total_resolutions(&eng, cfg.writers);
        }
        if reset_idx < resets.len() && t == start + resets[reset_idx].0 {
            // The Figure-8 mid-run reset arrives the way a live operator's
            // would: as a session command against each writer.
            let new_hint = resets[reset_idx].1;
            for w in 0..cfg.writers {
                Session::open(&mut eng, NodeId(w as u32)).set_hint(new_hint).expect("valid hint");
            }
            // A hint reset opens a fresh observation regime.
            window_worst = 1.0;
            reset_idx += 1;
        }
        for (w, next) in next_write.iter_mut().enumerate().take(cfg.writers) {
            if *next == t {
                eng.with_node(NodeId(w as u32), |c, ctx| {
                    // Equal-ASCII strokes keep the numerical member small,
                    // matching the paper's order/staleness-driven decay.
                    c.draw((w % 16) as u16, 0, "s", ctx);
                });
                *next = t + cfg.write_period;
            }
        }
        if next_poll == t {
            let poll_worst = (0..cfg.writers)
                .map(|w| eng.node(NodeId(w as u32)).level().value())
                .fold(1.0, f64::min);
            window_worst = window_worst.min(poll_worst);
            next_poll = t + POLL;
        }
        if next_sample == t {
            if t >= start {
                let levels: Vec<f64> =
                    (0..cfg.writers).map(|w| eng.node(NodeId(w as u32)).level().value()).collect();
                let instant_worst = levels.iter().copied().fold(1.0, f64::min);
                let average = levels.iter().sum::<f64>() / levels.len() as f64;
                series.push(SamplePoint {
                    t_secs: (t - start).as_secs_f64(),
                    worst: window_worst.min(instant_worst),
                    average,
                });
                window_worst = 1.0;
            }
            next_sample = t + cfg.sample_period;
        }
    }
    eng.run_until(end);

    let window = eng.stats().since(window_stats.as_ref().unwrap_or(eng.stats()));
    let mut records = Vec::new();
    for w in 0..cfg.writers {
        for r in eng.node(NodeId(w as u32)).idea().resolution_log() {
            if r.started >= start {
                records.push(r.clone());
            }
        }
    }
    let resolutions = total_resolutions(&eng, cfg.writers) - pre_window_res;
    let min_worst = series.iter().map(|p| p.worst).fold(1.0, f64::min);
    let mean_average = if series.is_empty() {
        1.0
    } else {
        series.iter().map(|p| p.average).sum::<f64>() / series.len() as f64
    };

    HintRunResult {
        series,
        min_worst,
        mean_average,
        resolutions,
        records,
        resolution_messages: window.resolution_messages(),
        detect_messages: window.messages(MsgClass::Detect),
        detect_bytes: window.payload_bytes(MsgClass::Detect),
    }
}

fn total_resolutions(eng: &SimEngine<WhiteboardClient>, writers: usize) -> u64 {
    (0..writers).map(|w| eng.node(NodeId(w as u32)).report().resolutions_initiated).sum()
}

/// Configuration of an automatic booking run (Table 3 and Figure 10).
#[derive(Debug, Clone)]
pub struct BookingRunConfig {
    /// Total nodes.
    pub nodes: usize,
    /// Booking servers (the top layer; paper: 4).
    pub servers: usize,
    /// Flight capacity (large enough not to sell out mid-run).
    pub capacity: u32,
    /// Background resolution period (Table 3: 20 s vs 40 s).
    pub period: SimDuration,
    /// Warm-up before measurement.
    pub warmup: SimDuration,
    /// Measurement window (paper: 100 s).
    pub duration: SimDuration,
    /// Per-server booking arrival period (uniform workload).
    pub booking_period: SimDuration,
    /// Sampling period.
    pub sample_period: SimDuration,
    /// Ticket price in cents (feeds the numerical metric).
    pub price_cents: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BookingRunConfig {
    fn default() -> Self {
        BookingRunConfig {
            nodes: 40,
            servers: 4,
            capacity: 100_000,
            period: SimDuration::from_secs(20),
            warmup: SimDuration::from_secs(20),
            duration: SimDuration::from_secs(100),
            booking_period: SimDuration::from_secs(5),
            sample_period: SimDuration::from_secs(5),
            price_cents: 20_000,
            seed: 7,
        }
    }
}

/// Result of an automatic booking run.
#[derive(Debug, Clone)]
pub struct BookingRunResult {
    /// Sampled consistency series (worst/average over the servers).
    pub series: Vec<SamplePoint>,
    /// Mean of the average curve — Figure 10's comparison quantity.
    pub mean_level: f64,
    /// Resolution control+transfer messages in the window (Table 3's
    /// "Overhead (# of exchanged messages)").
    pub resolution_messages: u64,
    /// Completed background rounds in the window.
    pub rounds: u64,
    /// Messages per round (Formula 5).
    pub msgs_per_round: f64,
    /// Bandwidth under the paper's flat-1 KB model, bits/s.
    pub bandwidth_bps: f64,
    /// Seats sold across the fleet minus capacity (positive = oversold).
    pub oversold: i64,
}

/// Runs an automatic booking experiment (the §6.3 setup).
pub fn run_booking(cfg: &BookingRunConfig) -> BookingRunResult {
    let object = ObjectId(5);
    let servers: Vec<BookingServer> = (0..cfg.nodes)
        .map(|i| BookingServer::new(NodeId(i as u32), object, 501, cfg.capacity, cfg.period))
        .collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(cfg.nodes, cfg.seed),
        SimConfig { seed: cfg.seed, ..Default::default() },
        servers,
    );
    // Scale the numerical metric to the sale volume: a gap of five missed
    // bookings saturates it (§5.2's "gap of the system's overall sale
    // price"). Built once as a typed spec, applied per node as a session
    // command.
    let metric = ConsistencySpec::builder()
        .metric((cfg.price_cents * 5) as f64, 40.0, SimDuration::from_secs(60))
        .build()
        .expect("valid metric");
    for i in 0..cfg.nodes {
        Session::open(&mut eng, NodeId(i as u32)).configure(metric.clone()).expect("valid metric");
    }

    let start = SimTime::ZERO + cfg.warmup;
    let end = start + cfg.duration;
    let mut next_booking: Vec<SimTime> =
        (0..cfg.servers).map(|s| SimTime::ZERO + SimDuration::from_secs(s as u64)).collect();
    let mut next_sample = start;
    let mut series = Vec::new();
    let mut window_stats: Option<NetStats> = None;
    let mut pre_rounds = 0u64;

    loop {
        let mut t = next_sample;
        for &b in &next_booking {
            t = t.min(b);
        }
        if t > end {
            break;
        }
        eng.run_until(t);
        if window_stats.is_none() && t >= start {
            window_stats = Some(eng.stats().clone());
            pre_rounds = eng.node(NodeId(0)).report().resolutions_initiated;
        }
        for (s, next) in next_booking.iter_mut().enumerate().take(cfg.servers) {
            if *next == t {
                let price = cfg.price_cents;
                eng.with_node(NodeId(s as u32), |srv, ctx| {
                    let _ = srv.try_book(1, price, ctx);
                });
                *next = t + cfg.booking_period;
            }
        }
        if next_sample == t {
            if t >= start {
                let levels: Vec<f64> = (0..cfg.servers)
                    .map(|s| eng.node(NodeId(s as u32)).idea().level(object).value())
                    .collect();
                let worst = levels.iter().copied().fold(1.0, f64::min);
                let average = levels.iter().sum::<f64>() / levels.len() as f64;
                series.push(SamplePoint { t_secs: (t - start).as_secs_f64(), worst, average });
            }
            next_sample = t + cfg.sample_period;
        }
    }
    eng.run_until(end);

    let window = eng.stats().since(window_stats.as_ref().unwrap_or(eng.stats()));
    let resolution_messages = window.resolution_messages();
    let rounds = eng.node(NodeId(0)).report().resolutions_initiated - pre_rounds;
    let msgs_per_round = if rounds > 0 { resolution_messages as f64 / rounds as f64 } else { 0.0 };
    let bandwidth_bps = MessageSizeModel::PAPER_1KB.bandwidth_bps(
        resolution_messages,
        0,
        cfg.duration.as_secs_f64(),
    );
    let mean_level = if series.is_empty() {
        1.0
    } else {
        series.iter().map(|p| p.average).sum::<f64>() / series.len() as f64
    };
    let sold: i64 =
        (0..cfg.servers).map(|s| eng.node(NodeId(s as u32)).accepted_seats() as i64).sum();

    BookingRunResult {
        series,
        mean_level,
        resolution_messages,
        rounds,
        msgs_per_round,
        bandwidth_bps,
        oversold: sold - cfg.capacity as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_hint_cfg(hint: f64) -> HintRunConfig {
        HintRunConfig {
            nodes: 10,
            duration: SimDuration::from_secs(60),
            hint,
            ..Default::default()
        }
    }

    #[test]
    fn hint_run_produces_series_and_resolutions() {
        let r = run_hint(&small_hint_cfg(0.95));
        assert_eq!(r.series.len(), 13, "one sample per 5 s over 60 s inclusive");
        assert!(r.resolutions >= 1, "hint 95 % must trigger resolutions");
        assert!(r.min_worst < 0.98, "divergence must register");
        assert!(r.min_worst > 0.80, "resolution must hold the floor region");
        assert!(r.detect_messages > 0);
        assert!(r.resolution_messages > 0);
        // Compact wire forms: a detect message averages well under the
        // ~1 KB a full-history vector used to cost in long runs.
        assert!(r.detect_bytes / r.detect_messages < 512, "avg detect payload too large");
    }

    #[test]
    fn lower_hint_allows_deeper_dips() {
        let high = run_hint(&small_hint_cfg(0.95));
        let low = run_hint(&small_hint_cfg(0.85));
        assert!(
            low.min_worst < high.min_worst,
            "hint 85 % ({}) must dip below hint 95 % ({})",
            low.min_worst,
            high.min_worst
        );
        assert!(
            low.resolution_messages <= high.resolution_messages,
            "lower hint must not resolve more often"
        );
    }

    #[test]
    fn hint_reset_mid_run_changes_the_floor() {
        let mut cfg = small_hint_cfg(0.95);
        cfg.duration = SimDuration::from_secs(120);
        cfg.hint_resets = vec![(SimDuration::from_secs(60), 0.88)];
        let r = run_hint(&cfg);
        let first: f64 =
            r.series.iter().filter(|p| p.t_secs < 60.0).map(|p| p.worst).fold(1.0, f64::min);
        let second: f64 =
            r.series.iter().filter(|p| p.t_secs >= 65.0).map(|p| p.worst).fold(1.0, f64::min);
        assert!(
            second < first,
            "after the reset the floor must sit lower (first {first}, second {second})"
        );
    }

    #[test]
    fn booking_run_counts_rounds_and_messages() {
        let cfg = BookingRunConfig {
            nodes: 10,
            duration: SimDuration::from_secs(100),
            period: SimDuration::from_secs(20),
            ..Default::default()
        };
        let r = run_booking(&cfg);
        assert!(r.rounds >= 3, "expected ~5 rounds in 100 s, got {}", r.rounds);
        assert!(r.resolution_messages > 0);
        assert!(r.msgs_per_round > 4.0);
        // Table 3's bandwidth argument: far below dial-up.
        assert!(r.bandwidth_bps < 56_000.0);
        assert!(!r.series.is_empty());
    }

    #[test]
    fn faster_background_resolution_gives_higher_consistency() {
        let base = BookingRunConfig {
            nodes: 10,
            duration: SimDuration::from_secs(100),
            ..Default::default()
        };
        let fast =
            run_booking(&BookingRunConfig { period: SimDuration::from_secs(20), ..base.clone() });
        let slow = run_booking(&BookingRunConfig { period: SimDuration::from_secs(40), ..base });
        assert!(
            fast.mean_level > slow.mean_level,
            "20 s period ({:.3}) must beat 40 s ({:.3}) — Figure 10",
            fast.mean_level,
            slow.mean_level
        );
        assert!(
            fast.resolution_messages > slow.resolution_messages,
            "and cost more messages — Table 3"
        );
    }
}
