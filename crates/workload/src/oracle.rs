//! The cross-protocol consistency oracle.
//!
//! IDEA estimates its own level from detection rounds; the baselines don't
//! estimate anything. For the Figure-2 trade-off study every protocol must
//! be judged by the *same* yardstick, so the harness keeps a global view of
//! every update ever issued and scores each replica's extended version
//! vector against it with the same Formula-1 quantifier.

use idea_core::Quantifier;
use idea_types::{ConsistencyLevel, Update};
use idea_vv::ExtendedVersionVector;

/// Global union state built from every issued update.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyOracle {
    union: ExtendedVersionVector,
    quant: Quantifier,
}

impl ConsistencyOracle {
    /// An oracle with the default quantifier.
    pub fn new(quant: Quantifier) -> Self {
        ConsistencyOracle { union: ExtendedVersionVector::new(), quant }
    }

    /// Records an issued update (replays — e.g. reissued sequence numbers
    /// after invalidation — are ignored, keeping the union well-formed).
    pub fn record(&mut self, update: &Update) {
        self.union.record(update.writer(), update.seq(), update.at, update.meta_delta);
    }

    /// Total updates recorded.
    pub fn total(&self) -> u64 {
        self.union.total()
    }

    /// Scores a replica's vector against the union state.
    pub fn level_of(&self, replica: &ExtendedVersionVector) -> ConsistencyLevel {
        self.quant.level(&replica.triple_against(&self.union))
    }

    /// Mean level over several replicas.
    pub fn mean_level(&self, replicas: &[&ExtendedVersionVector]) -> f64 {
        if replicas.is_empty() {
            return 1.0;
        }
        replicas.iter().map(|r| self.level_of(r).value()).sum::<f64>() / replicas.len() as f64
    }

    /// Mean *mutual* consistency: every replica scored against the replica
    /// of the highest node id (IDEA's reference rule of §4.4.1, applied
    /// uniformly so the metric is protocol-agnostic). Unlike the vs-union
    /// score, this does not penalise protocols whose *resolution* discards
    /// conflicting updates — mutual agreement is what consistency means in
    /// the paper.
    pub fn mutual_mean_level(&self, replicas_by_id: &[&ExtendedVersionVector]) -> f64 {
        let Some(reference) = replicas_by_id.last() else {
            return 1.0;
        };
        let sum: f64 = replicas_by_id.iter().map(|r| self.quant_level(r, reference)).sum();
        sum / replicas_by_id.len() as f64
    }

    fn quant_level(
        &self,
        replica: &ExtendedVersionVector,
        reference: &ExtendedVersionVector,
    ) -> f64 {
        self.quant.level(&replica.triple_against(reference)).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idea_types::{ObjectId, SimTime, WriterId};

    fn upd(w: u32, seq: u64, at: u64, delta: i64) -> Update {
        Update::opaque(ObjectId(0), WriterId(w), seq, SimTime::from_secs(at), delta)
    }

    #[test]
    fn replica_with_everything_scores_perfect() {
        let mut oracle = ConsistencyOracle::new(Quantifier::default());
        let mut evv = ExtendedVersionVector::new();
        for (w, s, t) in [(0, 1, 1), (1, 1, 2), (0, 2, 3)] {
            let u = upd(w, s, t, 1);
            oracle.record(&u);
            evv.record(u.writer(), u.seq(), u.at, u.meta_delta);
        }
        assert_eq!(oracle.level_of(&evv), ConsistencyLevel::PERFECT);
        assert_eq!(oracle.total(), 3);
    }

    #[test]
    fn missing_updates_lower_the_score() {
        let mut oracle = ConsistencyOracle::new(Quantifier::default());
        let mut evv = ExtendedVersionVector::new();
        let u1 = upd(0, 1, 1, 1);
        oracle.record(&u1);
        evv.record(u1.writer(), u1.seq(), u1.at, u1.meta_delta);
        oracle.record(&upd(1, 1, 60, 10)); // replica never sees this
        let level = oracle.level_of(&evv);
        assert!(level < ConsistencyLevel::PERFECT);
    }

    #[test]
    fn replayed_records_are_ignored() {
        let mut oracle = ConsistencyOracle::new(Quantifier::default());
        oracle.record(&upd(0, 1, 1, 5));
        oracle.record(&upd(0, 1, 9, 5)); // reissued seq after invalidation
        assert_eq!(oracle.total(), 1);
    }

    #[test]
    fn mean_level_averages() {
        let mut oracle = ConsistencyOracle::new(Quantifier::default());
        let u = upd(0, 1, 1, 1);
        oracle.record(&u);
        let mut full = ExtendedVersionVector::new();
        full.record(u.writer(), u.seq(), u.at, u.meta_delta);
        let empty = ExtendedVersionVector::new();
        let mean = oracle.mean_level(&[&full, &empty]);
        let lone = oracle.level_of(&empty).value();
        assert!((mean - (1.0 + lone) / 2.0).abs() < 1e-12);
        assert_eq!(oracle.mean_level(&[]), 1.0);
    }
}
