//! Workload generation, experiment runners and report emitters.
//!
//! This crate is the bridge between the IDEA library and the paper's
//! evaluation (§6): it wires applications onto the simulator, replays the
//! paper's synthetic workloads ("uniform distribution of the updating
//! frequency", four concurrent writers updating every 5 seconds), samples
//! the metrics the paper reports (delay, consistency level, message
//! overhead), and renders them as tables, CSV and ASCII charts.
//!
//! One module per experiment lives under [`experiments`]; the
//! `idea-bench` binaries are thin wrappers over those functions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod oracle;
pub mod report;
pub mod runner;

pub use oracle::ConsistencyOracle;
pub use report::{ascii_chart, markdown_table, to_csv};
pub use runner::{BookingRunConfig, BookingRunResult, HintRunConfig, HintRunResult, SamplePoint};
