//! Table, CSV and ASCII-chart emitters for experiment output.

/// Renders a GitHub-style markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> =
            cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}", w = *w)).collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(), &widths));
    let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&dashes, &widths));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Renders `(x, y)` series as CSV with the given headers.
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Renders one or more named series as a fixed-size ASCII chart — enough to
/// eyeball the sawtooth of Figures 7/8/10 in a terminal. Series share the
/// x-range; y is clamped to `[y_min, y_max]`.
pub fn ascii_chart(
    series: &[(&str, &[(f64, f64)])],
    width: usize,
    height: usize,
    y_min: f64,
    y_max: f64,
) -> String {
    assert!(width >= 10 && height >= 3, "chart too small");
    assert!(y_max > y_min, "empty y range");
    let marks = ['*', 'o', '+', 'x', '#'];
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, pts) in series {
        for (x, _) in pts.iter() {
            x_min = x_min.min(*x);
            x_max = x_max.max(*x);
        }
    }
    if !x_min.is_finite() || x_max <= x_min {
        x_min = 0.0;
        x_max = 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for (x, y) in pts.iter() {
            let xf = (x - x_min) / (x_max - x_min);
            let yf = ((y - y_min) / (y_max - y_min)).clamp(0.0, 1.0);
            let col = (xf * (width - 1) as f64).round() as usize;
            let row = height - 1 - (yf * (height - 1) as f64).round() as usize;
            grid[row][col.min(width - 1)] = mark;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let y_label = y_max - (y_max - y_min) * i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_label:>7.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>8}+{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>9}{:<.1}{}{:>.1}\n",
        "",
        x_min,
        " ".repeat(width.saturating_sub(8)),
        x_max
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {name}", marks[i % marks.len()]))
        .collect();
    out.push_str(&format!("{:>9}{}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_aligns_columns() {
        let t = markdown_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer-name".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with("| ---"));
        // All lines equal width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let c = to_csv(&["t", "level"], &[vec!["0".into(), "1.0".into()]]);
        assert_eq!(c, "t,level\n0,1.0\n");
    }

    #[test]
    fn chart_renders_series_marks() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 0.9 + 0.005 * i as f64)).collect();
        let chart = ascii_chart(&[("level", &pts)], 40, 8, 0.8, 1.0);
        assert!(chart.contains('*'));
        assert!(chart.contains("level"));
        assert!(chart.lines().count() >= 10);
    }

    #[test]
    fn chart_clamps_out_of_range() {
        let pts = [(0.0, -5.0), (1.0, 5.0)];
        let chart = ascii_chart(&[("x", &pts)], 20, 5, 0.0, 1.0);
        assert!(chart.contains('*'));
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn tiny_chart_rejected() {
        let _ = ascii_chart(&[("x", &[(0.0, 0.0)])], 2, 2, 0.0, 1.0);
    }
}
