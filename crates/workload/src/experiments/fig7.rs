//! Figure 7(a)/(b): the adaptive interface under hint levels 95 % and 85 %.
//!
//! Paper setup (§6.1): 40 PlanetLab nodes, four concurrent writers of one
//! file updating every 5 s over 100 s, sampled every 5 s. With the hint at
//! 95 % the lowest user-visible level is ~94 %; at 85 % it is ~84 % — IDEA
//! kicks in just under the hint and pulls consistency back "in less than
//! one second" (the 5 s-sample plots show the next sample already
//! recovered).

use crate::report::{ascii_chart, markdown_table};
use crate::runner::{run_hint, HintRunConfig, HintRunResult};
use idea_types::SimDuration;

/// Paper anchor points for Figure 7.
pub struct Fig7Anchors {
    /// The hint level of the run.
    pub hint: f64,
    /// The paper's reported lowest user-visible consistency.
    pub paper_min: f64,
}

/// Figure 7(a): hint 95 %.
pub const FIG7A: Fig7Anchors = Fig7Anchors { hint: 0.95, paper_min: 0.94 };
/// Figure 7(b): hint 85 %.
pub const FIG7B: Fig7Anchors = Fig7Anchors { hint: 0.85, paper_min: 0.84 };

/// Runs the Figure-7 experiment at `hint`.
pub fn run(hint: f64, seed: u64) -> HintRunResult {
    run_hint(&HintRunConfig { hint, seed, ..Default::default() })
}

/// Renders the paper-vs-measured report with the sampled series chart.
pub fn report(anchors: &Fig7Anchors, result: &HintRunResult) -> String {
    let user: Vec<(f64, f64)> = result.series.iter().map(|p| (p.t_secs, p.worst * 100.0)).collect();
    let avg: Vec<(f64, f64)> =
        result.series.iter().map(|p| (p.t_secs, p.average * 100.0)).collect();
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 7 (hint = {:.0} %): consistency level vs time, 40 nodes, 4 writers, update/5 s\n\n",
        anchors.hint * 100.0
    ));
    out.push_str(&ascii_chart(
        &[("view from the user", &user), ("system average", &avg)],
        72,
        14,
        (anchors.hint - 0.12) * 100.0,
        100.5,
    ));
    out.push('\n');
    out.push_str(&markdown_table(
        &["quantity", "paper", "measured"],
        &[
            vec![
                "lowest user-visible level".into(),
                format!("{:.0} %", anchors.paper_min * 100.0),
                format!("{:.1} %", result.min_worst * 100.0),
            ],
            vec![
                "mean system average".into(),
                "~hint level or above".into(),
                format!("{:.1} %", result.mean_average * 100.0),
            ],
            vec![
                "resolutions in 100 s".into(),
                "(not reported)".into(),
                format!("{}", result.resolutions),
            ],
        ],
    ));
    out
}

/// Shape check used by tests and the bench harness: the minimum should sit
/// just below the hint (IDEA fires under the floor, recovers within a
/// sample), within `tolerance`.
pub fn shape_holds(anchors: &Fig7Anchors, result: &HintRunResult, tolerance: f64) -> bool {
    let min = result.min_worst;
    min < anchors.hint && min >= anchors.hint - tolerance && result.resolutions > 0
}

/// Default experiment duration (exposed for the bench harness).
pub fn duration() -> SimDuration {
    HintRunConfig::default().duration
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_shape_holds() {
        let r = run(FIG7A.hint, 7);
        assert!(shape_holds(&FIG7A, &r, 0.08), "min {} vs hint {}", r.min_worst, FIG7A.hint);
        // 100 s / 5 s sampling inclusive of t=0.
        assert_eq!(r.series.len(), 21);
    }

    #[test]
    fn fig7b_shape_holds() {
        let r = run(FIG7B.hint, 7);
        assert!(shape_holds(&FIG7B, &r, 0.10), "min {} vs hint {}", r.min_worst, FIG7B.hint);
    }

    #[test]
    fn fig7b_dips_deeper_and_resolves_less_than_fig7a() {
        let a = run(FIG7A.hint, 7);
        let b = run(FIG7B.hint, 7);
        assert!(b.min_worst < a.min_worst);
        assert!(b.resolutions <= a.resolutions);
    }

    #[test]
    fn report_mentions_both_curves() {
        let r = run(FIG7A.hint, 7);
        let text = report(&FIG7A, &r);
        assert!(text.contains("view from the user"));
        assert!(text.contains("system average"));
        assert!(text.contains("paper"));
    }
}
