//! Figure 8: the hint-based application over 200 s with a mid-run reset.
//!
//! Paper setup (§6.1): same four writers, 200 s run (40 updates per
//! writer), hint initially 95 %, reset to 90 % after 100 s. "The achieved
//! lowest consistency level for writers … is about 95 % in the first 100
//! seconds and 90 % in the second 100 seconds."

use crate::report::{ascii_chart, markdown_table};
use crate::runner::{run_hint, HintRunConfig, HintRunResult};
use idea_types::SimDuration;

/// Runs the Figure-8 experiment.
pub fn run(seed: u64) -> HintRunResult {
    run_hint(&HintRunConfig {
        hint: 0.95,
        duration: SimDuration::from_secs(200),
        hint_resets: vec![(SimDuration::from_secs(100), 0.90)],
        seed,
        ..Default::default()
    })
}

/// Minimum worst-writer level in each half of the run.
pub fn half_minima(result: &HintRunResult) -> (f64, f64) {
    let first =
        result.series.iter().filter(|p| p.t_secs < 100.0).map(|p| p.worst).fold(1.0, f64::min);
    // Skip the reset instant itself: the paper's floor statement applies to
    // steady state under the new hint.
    let second =
        result.series.iter().filter(|p| p.t_secs >= 105.0).map(|p| p.worst).fold(1.0, f64::min);
    (first, second)
}

/// Renders the paper-vs-measured report.
pub fn report(result: &HintRunResult) -> String {
    let (first, second) = half_minima(result);
    let user: Vec<(f64, f64)> = result.series.iter().map(|p| (p.t_secs, p.worst * 100.0)).collect();
    let mut out = String::new();
    out.push_str("Figure 8: hint-based run, 200 s, hint 95 % reset to 90 % at t = 100 s\n\n");
    out.push_str(&ascii_chart(&[("view from the user", &user)], 72, 14, 80.0, 100.5));
    out.push('\n');
    out.push_str(&markdown_table(
        &["quantity", "paper", "measured"],
        &[
            vec![
                "min level, first 100 s".into(),
                "~95 %".into(),
                format!("{:.1} %", first * 100.0),
            ],
            vec![
                "min level, second 100 s".into(),
                "~90 %".into(),
                format!("{:.1} %", second * 100.0),
            ],
        ],
    ));
    out
}

/// Shape check: each half's floor tracks its hint within `tolerance`, and
/// the second half sits below the first.
pub fn shape_holds(result: &HintRunResult, tolerance: f64) -> bool {
    let (first, second) = half_minima(result);
    second < first && first >= 0.95 - tolerance && second >= 0.90 - tolerance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_floors_track_the_hints() {
        let r = run(7);
        assert!(shape_holds(&r, 0.08), "minima {:?}", half_minima(&r));
        assert_eq!(r.series.len(), 41, "200 s at 5 s samples inclusive");
    }

    #[test]
    fn report_contains_both_halves() {
        let r = run(7);
        let text = report(&r);
        assert!(text.contains("first 100 s"));
        assert!(text.contains("second 100 s"));
    }
}
