//! Table 2: the two-phase breakdown of active resolution.
//!
//! Paper setup (§6.2): four concurrent writers in the top layer; the
//! resolution scheme runs four times, each initiated by a different writer;
//! the result is the average. Reported: phase 1 = 0.46825 ms (the parallel
//! call-for-attention dispatch), phase 2 = 314.241 ms (sequentially visiting
//! the three other members).

use super::active::{mean_ms, measure_active_rounds};
use crate::report::markdown_table;
use idea_core::resolution::formula2_active_delay_ms;

/// Measured Table-2 quantities (milliseconds).
#[derive(Debug, Clone, Copy)]
pub struct Table2Result {
    /// Phase-1 dispatch cost (paper's "Phase 1").
    pub phase1_dispatch_ms: f64,
    /// Phase-1 completion including acknowledgements (one WAN RTT) — a
    /// second reading the paper's sub-RTT number cannot include; reported
    /// for completeness.
    pub phase1_acked_ms: f64,
    /// Phase-2 duration (paper's "Phase 2").
    pub phase2_ms: f64,
    /// Initiators averaged.
    pub runs: usize,
}

/// Paper anchors.
pub const PAPER_PHASE1_MS: f64 = 0.46825;
/// Paper's phase-2 anchor.
pub const PAPER_PHASE2_MS: f64 = 314.241;

/// Runs the Table-2 experiment: 40 nodes, top layer of 4, one resolution
/// per initiator, averaged.
pub fn run(seed: u64) -> Table2Result {
    let records = measure_active_rounds(40, 4, seed, false);
    Table2Result {
        phase1_dispatch_ms: mean_ms(&records, |r| r.phase1_dispatch.as_millis_f64()),
        phase1_acked_ms: mean_ms(&records, |r| r.phase1_acked.as_millis_f64()),
        phase2_ms: mean_ms(&records, |r| r.phase2.as_millis_f64()),
        runs: records.len(),
    }
}

/// Renders the paper-vs-measured table.
pub fn report(r: &Table2Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 2: active-resolution phase breakdown (top layer = 4, mean of {} initiators)\n\n",
        r.runs
    ));
    out.push_str(&markdown_table(
        &["phase", "paper", "measured"],
        &[
            vec![
                "Phase 1 (parallel call-for-attention, dispatch)".into(),
                format!("{PAPER_PHASE1_MS:.5} ms"),
                format!("{:.5} ms", r.phase1_dispatch_ms),
            ],
            vec![
                "Phase 1 incl. acknowledgements (one WAN RTT)".into(),
                "(not separately reported)".into(),
                format!("{:.1} ms", r.phase1_acked_ms),
            ],
            vec![
                "Phase 2 (sequential collect + inform)".into(),
                format!("{PAPER_PHASE2_MS:.3} ms"),
                format!("{:.1} ms", r.phase2_ms),
            ],
        ],
    ));
    out.push_str(&format!(
        "\nFormula 2 fit at n = 4: paper {:.1} ms, measured {:.1} ms\n",
        formula2_active_delay_ms(4),
        r.phase1_dispatch_ms + r.phase2_ms,
    ));
    out
}

/// Shape check: phase 1 is sub-millisecond and orders of magnitude below
/// phase 2, which sits in the paper's few-hundred-ms band.
pub fn shape_holds(r: &Table2Result) -> bool {
    r.phase1_dispatch_ms < 1.0
        && r.phase2_ms > 50.0 * r.phase1_dispatch_ms
        && r.phase2_ms > 150.0
        && r.phase2_ms < 650.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_holds() {
        let r = run(7);
        assert_eq!(r.runs, 4);
        assert!(shape_holds(&r), "{r:?}");
        // The dispatch model is calibrated to the paper's 0.468 ms.
        assert!((r.phase1_dispatch_ms - PAPER_PHASE1_MS).abs() < 0.05, "{r:?}");
        // Phase 2 should land within ~40 % of the paper's 314 ms (three
        // sequential cross-region RTTs).
        assert!(
            (r.phase2_ms - PAPER_PHASE2_MS).abs() / PAPER_PHASE2_MS < 0.4,
            "phase2 {} ms",
            r.phase2_ms
        );
    }

    #[test]
    fn acked_phase1_is_a_round_trip() {
        let r = run(8);
        assert!(r.phase1_acked_ms > 50.0, "{r:?}");
        assert!(r.phase1_acked_ms < 300.0, "{r:?}");
    }

    #[test]
    fn report_has_both_phases() {
        let text = report(&run(7));
        assert!(text.contains("Phase 1"));
        assert!(text.contains("Phase 2"));
        assert!(text.contains("314.241"));
    }
}
