//! Figure 9: scalability of active resolution with top-layer size.
//!
//! The paper extrapolates Formula 2 — `0.46825 + 104.747 · (n − 1)` ms —
//! from the Table-2 measurement and plots it for n up to 10, arguing the
//! cost stays below one second. We *measure* the delay at every size and
//! print it against the formula.

use super::active::{mean_ms, measure_active_rounds};
use crate::report::{ascii_chart, markdown_table};
use idea_core::resolution::formula2_active_delay_ms;

/// One point of the scalability curve.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Point {
    /// Top-layer size.
    pub n: usize,
    /// Measured mean total delay (phase-1 dispatch + phase 2), ms.
    pub measured_ms: f64,
    /// Formula-2 extrapolation, ms.
    pub formula_ms: f64,
}

/// Runs the sweep over top-layer sizes `2..=max_n`.
pub fn run(max_n: usize, seed: u64) -> Vec<Fig9Point> {
    (2..=max_n)
        .map(|n| {
            let records = measure_active_rounds(n + 6, n, seed + n as u64, false);
            let measured_ms = mean_ms(&records, |r| r.total_delay().as_millis_f64());
            Fig9Point { n, measured_ms, formula_ms: formula2_active_delay_ms(n) }
        })
        .collect()
}

/// Renders the curve and the comparison table.
pub fn report(points: &[Fig9Point]) -> String {
    let measured: Vec<(f64, f64)> = points.iter().map(|p| (p.n as f64, p.measured_ms)).collect();
    let formula: Vec<(f64, f64)> = points.iter().map(|p| (p.n as f64, p.formula_ms)).collect();
    let mut out = String::new();
    out.push_str("Figure 9: active-resolution delay vs top-layer size\n\n");
    out.push_str(&ascii_chart(
        &[("measured", &measured), ("formula 2", &formula)],
        64,
        12,
        0.0,
        1_100.0,
    ));
    out.push('\n');
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                format!("{:.1} ms", p.formula_ms),
                format!("{:.1} ms", p.measured_ms),
            ]
        })
        .collect();
    out.push_str(&markdown_table(&["top-layer size", "paper (formula 2)", "measured"], &rows));
    out.push_str(
        "\nPaper claim: even with ten simultaneous writers the cost stays below one second.\n",
    );
    out
}

/// Shape checks: the curve grows monotonically (within jitter), tracks the
/// formula within `rel_tol`, and stays under a second at n = 10.
pub fn shape_holds(points: &[Fig9Point], rel_tol: f64) -> bool {
    let tracks =
        points.iter().all(|p| (p.measured_ms - p.formula_ms).abs() / p.formula_ms < rel_tol);
    let under_a_second = points.iter().all(|p| p.n != 10 || p.measured_ms < 1_000.0);
    let grows = points.windows(2).all(|w| w[1].measured_ms > w[0].measured_ms * 0.9);
    tracks && under_a_second && grows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_tracks_formula2() {
        // A reduced sweep keeps the test quick; the bench runs the full one.
        let points = run(6, 7);
        assert_eq!(points.len(), 5);
        assert!(shape_holds(&points, 0.45), "{points:?}");
    }

    #[test]
    fn report_prints_every_size() {
        let points = run(4, 7);
        let text = report(&points);
        for p in &points {
            assert!(text.contains(&format!("{:.1} ms", p.formula_ms)));
        }
        assert!(text.contains("below one second"));
    }
}
