//! Figure 2: the conceptual trade-off, measured.
//!
//! The paper positions protocols on a detection-speed/overhead spectrum:
//! optimistic control detects (and repairs) slowly but cheaply; strong
//! consistency never lets inconsistency exist but pays per-write WAN
//! round-trips; IDEA sits between, and TACT holds a *fixed* point of the
//! spectrum. We run the same four-writer workload under all four protocols
//! and score every replica against the same [`ConsistencyOracle`].

use crate::oracle::ConsistencyOracle;
use crate::report::markdown_table;
use idea_baselines::{OptimisticNode, StrongNode, TactBounds, TactNode};
use idea_core::{IdeaConfig, IdeaNode, Quantifier};
use idea_net::{SimConfig, SimEngine, Topology};
use idea_types::{NodeId, ObjectId, SimDuration, SimTime, UpdatePayload};

const OBJ: ObjectId = ObjectId(1);

/// One protocol's row in the trade-off table.
#[derive(Debug, Clone)]
pub struct TradeoffRow {
    /// Protocol name.
    pub name: &'static str,
    /// Mean oracle consistency level over writers and samples.
    pub mean_level: f64,
    /// Total messages sent during the run.
    pub total_messages: u64,
    /// Mean write-commit latency in ms (zero for local-commit protocols).
    pub mean_commit_ms: f64,
}

/// Workload shared by all four runs.
#[derive(Debug, Clone, Copy)]
pub struct TradeoffConfig {
    /// Nodes in the deployment.
    pub nodes: usize,
    /// Concurrent writers.
    pub writers: usize,
    /// Run length.
    pub duration: SimDuration,
    /// Per-writer write period.
    pub write_period: SimDuration,
    /// Sampling period for the oracle.
    pub sample_period: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TradeoffConfig {
    fn default() -> Self {
        TradeoffConfig {
            nodes: 8,
            writers: 4,
            duration: SimDuration::from_secs(100),
            write_period: SimDuration::from_secs(5),
            sample_period: SimDuration::from_secs(5),
            seed: 7,
        }
    }
}

/// Drives one protocol engine through the shared workload, scoring with the
/// oracle. The closures adapt the per-protocol write/state APIs.
fn drive<P: idea_net::Proto>(
    cfg: &TradeoffConfig,
    mut eng: SimEngine<P>,
    mut write: impl FnMut(&mut SimEngine<P>, u32, SimTime, &mut ConsistencyOracle),
    evv_of: impl Fn(&SimEngine<P>, u32) -> idea_vv::ExtendedVersionVector,
) -> (f64, u64, SimEngine<P>) {
    let mut oracle = ConsistencyOracle::new(Quantifier::default());
    let end = SimTime::ZERO + cfg.duration;
    let mut next_write: Vec<SimTime> =
        (0..cfg.writers).map(|w| SimTime::ZERO + SimDuration::from_secs(w as u64)).collect();
    let mut next_sample = SimTime::ZERO + cfg.sample_period;
    let mut level_sum = 0.0;
    let mut samples = 0usize;
    loop {
        let mut t = next_sample;
        for &w in &next_write {
            t = t.min(w);
        }
        if t > end {
            break;
        }
        eng.run_until(t);
        for (w, next) in next_write.iter_mut().enumerate().take(cfg.writers) {
            if *next == t {
                write(&mut eng, w as u32, t, &mut oracle);
                *next = t + cfg.write_period;
            }
        }
        if next_sample == t {
            let evvs: Vec<idea_vv::ExtendedVersionVector> =
                (0..cfg.writers).map(|w| evv_of(&eng, w as u32)).collect();
            let refs: Vec<&idea_vv::ExtendedVersionVector> = evvs.iter().collect();
            // Mutual agreement, not vs-union: resolution legitimately
            // discards conflicting updates (see `ConsistencyOracle`).
            level_sum += oracle.mutual_mean_level(&refs);
            samples += 1;
            next_sample = t + cfg.sample_period;
        }
    }
    eng.run_until(end);
    let mean = if samples == 0 { 1.0 } else { level_sum / samples as f64 };
    let msgs = eng.stats().total_messages();
    (mean, msgs, eng)
}

fn payload() -> UpdatePayload {
    UpdatePayload::Opaque(bytes::Bytes::new())
}

/// Runs the full four-protocol comparison.
pub fn run(cfg: &TradeoffConfig) -> Vec<TradeoffRow> {
    let mut rows = Vec::new();
    let sim_cfg = |seed| SimConfig { seed, ..Default::default() };

    // Optimistic anti-entropy, 10 s period.
    {
        let nodes = (0..cfg.nodes)
            .map(|i| OptimisticNode::new(NodeId(i as u32), OBJ, SimDuration::from_secs(10)))
            .collect();
        let eng =
            SimEngine::new(Topology::planetlab(cfg.nodes, cfg.seed), sim_cfg(cfg.seed), nodes);
        let (mean_level, total_messages, _) = drive(
            cfg,
            eng,
            |eng, w, _, oracle| {
                eng.with_node(NodeId(w), |p, ctx| {
                    let u = p.local_write(1, payload(), ctx);
                    oracle.record(&u);
                });
            },
            |eng, w| eng.node(NodeId(w)).store().replica(OBJ).unwrap().version().clone(),
        );
        rows.push(TradeoffRow {
            name: "optimistic (anti-entropy 10 s)",
            mean_level,
            total_messages,
            mean_commit_ms: 0.0,
        });
    }

    // TACT with order bound 4 / staleness bound 15 s.
    {
        let bounds = TactBounds { order: 4, staleness: SimDuration::from_secs(15) };
        let nodes = (0..cfg.nodes).map(|i| TactNode::new(NodeId(i as u32), OBJ, bounds)).collect();
        let eng =
            SimEngine::new(Topology::planetlab(cfg.nodes, cfg.seed), sim_cfg(cfg.seed), nodes);
        let (mean_level, total_messages, _) = drive(
            cfg,
            eng,
            |eng, w, _, oracle| {
                eng.with_node(NodeId(w), |p, ctx| {
                    let u = p.local_write(1, payload(), ctx);
                    oracle.record(&u);
                });
            },
            |eng, w| eng.node(NodeId(w)).store().replica(OBJ).unwrap().version().clone(),
        );
        rows.push(TradeoffRow {
            name: "TACT (order<=4, stale<=15 s)",
            mean_level,
            total_messages,
            mean_commit_ms: 0.0,
        });
    }

    // IDEA, hint 0.90.
    {
        let mut idea_cfg = IdeaConfig::whiteboard(0.90);
        idea_cfg.weights = idea_core::Weights::EQUAL;
        let nodes = (0..cfg.nodes)
            .map(|i| IdeaNode::new(NodeId(i as u32), idea_cfg.clone(), &[OBJ]))
            .collect();
        let eng =
            SimEngine::new(Topology::planetlab(cfg.nodes, cfg.seed), sim_cfg(cfg.seed), nodes);
        let (mean_level, total_messages, _) = drive(
            cfg,
            eng,
            |eng, w, _, oracle| {
                eng.with_node(NodeId(w), |p, ctx| {
                    let u = p.local_write(OBJ, 1, payload(), ctx);
                    oracle.record(&u);
                });
            },
            |eng, w| eng.node(NodeId(w)).replica(OBJ).unwrap().version().clone(),
        );
        rows.push(TradeoffRow {
            name: "IDEA (hint 90 %)",
            mean_level,
            total_messages,
            mean_commit_ms: 0.0,
        });
    }

    // Strong write-all replication.
    {
        let nodes = (0..cfg.nodes).map(|i| StrongNode::new(NodeId(i as u32), OBJ)).collect();
        let eng =
            SimEngine::new(Topology::planetlab(cfg.nodes, cfg.seed), sim_cfg(cfg.seed), nodes);
        let (mean_level, total_messages, eng) = drive(
            cfg,
            eng,
            |eng, w, _, oracle| {
                eng.with_node(NodeId(w), |p, ctx| {
                    let u = p.local_write(1, payload(), ctx);
                    oracle.record(&u);
                });
            },
            |eng, w| eng.node(NodeId(w)).store().replica(OBJ).unwrap().version().clone(),
        );
        let mut lat_sum = 0.0;
        let mut lat_n = 0usize;
        for w in 0..cfg.writers {
            for d in eng.node(NodeId(w as u32)).commit_latencies() {
                lat_sum += d.as_millis_f64();
                lat_n += 1;
            }
        }
        rows.push(TradeoffRow {
            name: "strong (write-all)",
            mean_level,
            total_messages,
            mean_commit_ms: if lat_n == 0 { 0.0 } else { lat_sum / lat_n as f64 },
        });
    }

    rows
}

/// Renders the trade-off table.
pub fn report(rows: &[TradeoffRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 2 (measured): consistency guarantee vs overhead, identical workload & oracle\n\n",
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.1} %", r.mean_level * 100.0),
                r.total_messages.to_string(),
                format!("{:.1} ms", r.mean_commit_ms),
            ]
        })
        .collect();
    out.push_str(&markdown_table(
        &["protocol", "mean oracle consistency", "total msgs", "mean commit latency"],
        &table_rows,
    ));
    out.push_str(
        "\nPaper's conceptual ordering: optimistic < IDEA < strong on both detection speed\n\
         (here: achieved consistency) and overhead; TACT holds a fixed intermediate point.\n",
    );
    out
}

/// Shape check: the Figure-2 ordering holds — optimistic is cheapest and
/// least consistent; strong is most consistent and (with per-write fan-out
/// plus acks) most expensive; IDEA sits strictly between on consistency.
pub fn shape_holds(rows: &[TradeoffRow]) -> bool {
    let find = |n: &str| rows.iter().find(|r| r.name.starts_with(n)).expect("row exists");
    let optimistic = find("optimistic");
    let idea = find("IDEA");
    let strong = find("strong");
    optimistic.mean_level < idea.mean_level
        && idea.mean_level < strong.mean_level
        && optimistic.total_messages < idea.total_messages
        && strong.mean_commit_ms > 50.0
        && optimistic.mean_commit_ms == 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Vec<TradeoffRow> {
        run(&TradeoffConfig { duration: SimDuration::from_secs(60), ..Default::default() })
    }

    #[test]
    fn tradeoff_ordering_matches_figure2() {
        let rows = quick();
        assert_eq!(rows.len(), 4);
        assert!(shape_holds(&rows), "{rows:?}");
    }

    #[test]
    fn strong_is_perfectly_consistent_between_writes() {
        let rows = quick();
        let strong = rows.iter().find(|r| r.name.starts_with("strong")).unwrap();
        assert!(strong.mean_level > 0.97, "strong level {:.3}", strong.mean_level);
    }

    #[test]
    fn report_lists_all_protocols() {
        let text = report(&quick());
        for name in ["optimistic", "TACT", "IDEA", "strong"] {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
