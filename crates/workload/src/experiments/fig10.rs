//! Figure 10: the automatic system's consistency under two background
//! frequencies.
//!
//! Paper setup (§6.3.1): same booking environment as Table 3; the plotted
//! consistency level "is the one perceived by all the top layer nodes".
//! The 20 s-period run holds a higher average level than the 40 s run —
//! the frequency/overhead trade-off of §6.3.2.

use crate::report::{ascii_chart, markdown_table};
use crate::runner::{run_booking, BookingRunConfig, BookingRunResult};
use idea_types::SimDuration;

/// The two Figure-10 series.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// 20 s-period run.
    pub fast: BookingRunResult,
    /// 40 s-period run.
    pub slow: BookingRunResult,
}

/// Runs both Figure-10 configurations.
pub fn run(seed: u64) -> Fig10Result {
    let base = BookingRunConfig { seed, ..Default::default() };
    Fig10Result {
        fast: run_booking(&BookingRunConfig { period: SimDuration::from_secs(20), ..base.clone() }),
        slow: run_booking(&BookingRunConfig { period: SimDuration::from_secs(40), ..base }),
    }
}

/// Renders both series and the averages.
pub fn report(r: &Fig10Result) -> String {
    let fast: Vec<(f64, f64)> =
        r.fast.series.iter().map(|p| (p.t_secs, p.average * 100.0)).collect();
    let slow: Vec<(f64, f64)> =
        r.slow.series.iter().map(|p| (p.t_secs, p.average * 100.0)).collect();
    let mut out = String::new();
    out.push_str("Figure 10: automatic booking system, top-layer consistency vs time\n\n");
    out.push_str(&ascii_chart(
        &[("period 20 s", &fast), ("period 40 s", &slow)],
        72,
        14,
        70.0,
        100.5,
    ));
    out.push('\n');
    out.push_str(&markdown_table(
        &["frequency", "paper", "measured mean level"],
        &[
            vec![
                "every 20 s".into(),
                "higher average (sawtooth, shallow dips)".into(),
                format!("{:.1} %", r.fast.mean_level * 100.0),
            ],
            vec![
                "every 40 s".into(),
                "lower average (deeper dips)".into(),
                format!("{:.1} %", r.slow.mean_level * 100.0),
            ],
        ],
    ));
    out
}

/// Shape check: faster background resolution yields a strictly higher mean
/// consistency level; the fast run recovers visibly (sawtooth peaks) and
/// the slow run dips visibly deeper.
pub fn shape_holds(r: &Fig10Result) -> bool {
    let fast_max = r.fast.series.iter().map(|p| p.average).fold(0.0, f64::max);
    let fast_min = r.fast.series.iter().map(|p| p.average).fold(1.0, f64::min);
    let slow_min = r.slow.series.iter().map(|p| p.average).fold(1.0, f64::min);
    r.fast.mean_level > r.slow.mean_level && fast_max > 0.93 && slow_min < fast_min + 0.02
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64) -> Fig10Result {
        let base = BookingRunConfig { nodes: 12, seed, ..Default::default() };
        Fig10Result {
            fast: run_booking(&BookingRunConfig {
                period: SimDuration::from_secs(20),
                ..base.clone()
            }),
            slow: run_booking(&BookingRunConfig { period: SimDuration::from_secs(40), ..base }),
        }
    }

    #[test]
    fn fig10_shape_holds() {
        let r = quick(7);
        assert!(
            shape_holds(&r),
            "fast mean {:.3}, slow mean {:.3}",
            r.fast.mean_level,
            r.slow.mean_level
        );
    }

    #[test]
    fn report_shows_both_periods() {
        let text = report(&quick(7));
        assert!(text.contains("period 20 s"));
        assert!(text.contains("period 40 s"));
    }
}
