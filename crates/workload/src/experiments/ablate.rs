//! Design-choice ablations (DESIGN.md A1–A4).
//!
//! These probe the claims the paper leans on but does not plot:
//!
//! * **A1** — the ref-\[16\] claim that the top layer catches > 95 % of
//!   inconsistencies, as a function of activity skew and layer size;
//! * **A2** — the §4.4.2 rollback machinery: TTL vs bottom-layer detection
//!   coverage and rollback frequency when a bottom-layer writer exists;
//! * **A3** — §6.2's remark that phase 2 could run in parallel: measured
//!   sequential vs parallel delays;
//! * **A4** — §5.2's under/oversell frequency-bounds learning.

use super::active::{mean_ms, measure_active_rounds};
use crate::report::markdown_table;
use idea_core::{IdeaConfig, IdeaNode};
use idea_detect::coverage::{min_top_size_for, top_layer_catch_probability, zipf_rates};
use idea_net::{MsgClass, SimConfig, SimEngine, Topology};
use idea_types::{NodeId, ObjectId, SimDuration, UpdatePayload};

const OBJ: ObjectId = ObjectId(1);

// ---------------------------------------------------------------- A1

/// One row of the coverage ablation.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// Zipf exponent of the activity profile.
    pub zipf_s: f64,
    /// Smallest top layer reaching 95 % catch probability.
    pub min_size_95: usize,
    /// Catch probability at a 4-member top layer.
    pub p_at_4: f64,
}

/// A1: coverage vs activity skew over `n` nodes.
pub fn run_coverage(n: usize) -> Vec<CoverageRow> {
    [0.8, 1.0, 1.2, 1.5, 2.0, 2.5]
        .iter()
        .map(|&s| {
            let rates = zipf_rates(n, s);
            CoverageRow {
                zipf_s: s,
                min_size_95: min_top_size_for(&rates, 0.95),
                p_at_4: top_layer_catch_probability(&rates, &[0, 1, 2, 3]),
            }
        })
        .collect()
}

/// Renders A1.
pub fn report_coverage(rows: &[CoverageRow]) -> String {
    let mut out = String::new();
    out.push_str("A1: top-layer coverage vs activity skew (ref [16]'s >95 % claim)\n\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.zipf_s),
                r.min_size_95.to_string(),
                format!("{:.1} %", r.p_at_4 * 100.0),
            ]
        })
        .collect();
    out.push_str(&markdown_table(
        &["zipf exponent", "min top size for 95 %", "P(caught) with top-4"],
        &table,
    ));
    out.push_str(
        "\nSkewed activity (the regime the paper assumes) needs only a handful of members.\n",
    );
    out
}

// ---------------------------------------------------------------- A2

/// One row of the rollback ablation.
#[derive(Debug, Clone)]
pub struct RollbackRow {
    /// Gossip TTL of the sweep.
    pub ttl: u8,
    /// Rollback events confirmed during the run.
    pub rollbacks: u64,
    /// Gossip messages spent.
    pub gossip_messages: u64,
}

/// A2: rollback detection vs sweep TTL with one bottom-layer writer.
pub fn run_rollback(seed: u64) -> Vec<RollbackRow> {
    [1u8, 2, 4, 6]
        .iter()
        .map(|&ttl| {
            let mut cfg = IdeaConfig {
                sweep_every: Some(1),
                sweep_deadline: SimDuration::from_secs(3),
                rollback_resolve: false,
                ..Default::default()
            };
            cfg.gossip.ttl = ttl;
            let nodes: Vec<IdeaNode> =
                (0..20).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[OBJ])).collect();
            let mut eng = SimEngine::new(
                Topology::planetlab(20, seed),
                SimConfig { seed, ..Default::default() },
                nodes,
            );
            // Warm the 4-writer top layer.
            for _ in 0..3 {
                for w in 0..4u32 {
                    eng.with_node(NodeId(w), |p, ctx| {
                        p.local_write(OBJ, 1, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
                    });
                    eng.run_for(SimDuration::from_millis(400));
                }
            }
            eng.run_for(SimDuration::from_secs(2));
            let gossip_before = eng.stats().messages(MsgClass::Gossip);
            // A bottom-layer node writes, invisible to the top layer.
            eng.with_node(NodeId(15), |p, ctx| {
                p.local_write(OBJ, 100, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
            });
            // Top writers keep probing; their sweeps should find node 15.
            for _ in 0..6 {
                for w in 0..4u32 {
                    eng.with_node(NodeId(w), |p, ctx| {
                        p.local_write(OBJ, 1, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
                    });
                }
                eng.run_for(SimDuration::from_secs(5));
            }
            let rollbacks: u64 = (0..4u32).map(|w| eng.node(NodeId(w)).report(OBJ).rollbacks).sum();
            RollbackRow {
                ttl,
                rollbacks,
                gossip_messages: eng.stats().messages(MsgClass::Gossip) - gossip_before,
            }
        })
        .collect()
}

/// Renders A2.
pub fn report_rollback(rows: &[RollbackRow]) -> String {
    let mut out = String::new();
    out.push_str("A2: bottom-layer sweep TTL vs rollback detection (one hidden bottom writer)\n\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.ttl.to_string(), r.rollbacks.to_string(), r.gossip_messages.to_string()])
        .collect();
    out.push_str(&markdown_table(&["TTL", "rollbacks confirmed", "gossip msgs"], &table));
    out.push_str("\nHigher TTL buys coverage (rollbacks found) at higher gossip cost — §4.4.2's \"trade-off between accuracy and responsiveness\".\n");
    out
}

// ---------------------------------------------------------------- A3

/// One row of the phase-2 parallelism ablation.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// Top-layer size.
    pub n: usize,
    /// Sequential phase-2 delay (ms).
    pub sequential_ms: f64,
    /// Parallel phase-2 delay (ms).
    pub parallel_ms: f64,
}

/// A3: sequential vs parallel phase 2 across top-layer sizes (from 4 —
/// with a single member the two strategies coincide).
pub fn run_parallel(max_n: usize, seed: u64) -> Vec<ParallelRow> {
    (4..=max_n)
        .step_by(2)
        .map(|n| {
            let seq = measure_active_rounds(n + 6, n, seed + n as u64, false);
            let par = measure_active_rounds(n + 6, n, seed + n as u64, true);
            ParallelRow {
                n,
                sequential_ms: mean_ms(&seq, |r| r.phase2.as_millis_f64()),
                parallel_ms: mean_ms(&par, |r| r.phase2.as_millis_f64()),
            }
        })
        .collect()
}

/// Renders A3.
pub fn report_parallel(rows: &[ParallelRow]) -> String {
    let mut out = String::new();
    out.push_str("A3: phase-2 parallelism (§6.2's suggested optimisation)\n\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.1} ms", r.sequential_ms),
                format!("{:.1} ms", r.parallel_ms),
                format!("{:.1}x", r.sequential_ms / r.parallel_ms.max(1e-9)),
            ]
        })
        .collect();
    out.push_str(&markdown_table(
        &["top-layer size", "sequential", "parallel", "speed-up"],
        &table,
    ));
    out.push_str("\nSequential grows linearly (Formula 2); parallel stays near one RTT.\n");
    out
}

// ---------------------------------------------------------------- A4

/// Trajectory of the automatic controller's learned window.
#[derive(Debug, Clone)]
pub struct BoundsTrace {
    /// `(event index, period seconds, window min, window max)` after each
    /// feedback event.
    pub steps: Vec<(usize, f64, f64, f64)>,
}

/// A4: feed alternating oversell/undersell events into the §5.2 controller
/// and record the converging window.
pub fn run_bounds() -> BoundsTrace {
    let mut auto = idea_core::AutoController::default();
    let mut steps = Vec::new();
    // Phase 1: repeated oversells (frequency too low).
    for i in 0..4 {
        auto.on_oversell();
        let (lo, hi) = auto.window();
        steps.push((i, auto.period().as_secs_f64(), lo.as_secs_f64(), hi.as_secs_f64()));
    }
    // Phase 2: an undersell (locked too often).
    for i in 4..6 {
        auto.on_undersell();
        let (lo, hi) = auto.window();
        steps.push((i, auto.period().as_secs_f64(), lo.as_secs_f64(), hi.as_secs_f64()));
    }
    // Phase 3: load adaptation inside the learned window.
    for (k, bw) in [1e6, 1e5, 1e4].iter().enumerate() {
        auto.adjust_for_load(*bw, 15.0 * 8192.0);
        let (lo, hi) = auto.window();
        steps.push((6 + k, auto.period().as_secs_f64(), lo.as_secs_f64(), hi.as_secs_f64()));
    }
    BoundsTrace { steps }
}

/// Renders A4.
pub fn report_bounds(trace: &BoundsTrace) -> String {
    let mut out = String::new();
    out.push_str("A4: automatic frequency-bounds learning (§5.2)\n\n");
    let table: Vec<Vec<String>> = trace
        .steps
        .iter()
        .map(|(i, p, lo, hi)| {
            vec![i.to_string(), format!("{p:.1} s"), format!("[{lo:.1}, {hi:.1}] s")]
        })
        .collect();
    out.push_str(&markdown_table(&["event", "period", "learned window"], &table));
    out.push_str("\nOversells shrink the maximum period; undersells raise the minimum; load\nadaptation then moves only inside the learned window.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_skew_reduces_required_top_size() {
        let rows = run_coverage(40);
        assert!(rows.windows(2).all(|w| w[1].min_size_95 <= w[0].min_size_95));
        assert!(rows.last().unwrap().p_at_4 > 0.9, "{rows:?}");
        assert!(report_coverage(&rows).contains("zipf"));
    }

    #[test]
    fn a2_higher_ttl_finds_the_hidden_writer() {
        // Aggregated over a few seeds: single-seed rollback counts are
        // near-tied now that sender exclusion makes even TTL 1 sweeps
        // reach most of a 20-node deployment; the *trend* is the claim.
        let (mut low_roll, mut high_roll) = (0, 0);
        let (mut low_msgs, mut high_msgs) = (0, 0);
        for seed in 5..8 {
            let rows = run_rollback(seed);
            let low = rows.first().unwrap();
            let high = rows.last().unwrap();
            low_roll += low.rollbacks;
            high_roll += high.rollbacks;
            low_msgs += low.gossip_messages;
            high_msgs += high.gossip_messages;
        }
        assert!(
            high_roll >= low_roll,
            "TTL 6 found {high_roll} vs TTL 1 found {low_roll} across seeds"
        );
        assert!(high_roll >= 1, "TTL 6 must reach the bottom writer");
        assert!(high_msgs > low_msgs);
    }

    #[test]
    fn a3_parallel_beats_sequential_at_scale() {
        let rows = run_parallel(8, 7);
        for r in &rows {
            assert!(
                r.parallel_ms < r.sequential_ms,
                "n={} parallel {} vs sequential {}",
                r.n,
                r.parallel_ms,
                r.sequential_ms
            );
        }
        // The gap widens with n.
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert!(last.sequential_ms / last.parallel_ms > first.sequential_ms / first.parallel_ms);
    }

    #[test]
    fn a4_window_converges() {
        let trace = run_bounds();
        let (_, _, lo, hi) = *trace.steps.last().unwrap();
        assert!(lo <= hi);
        // The learned window is strictly tighter than the initial [2, 120].
        assert!(hi < 120.0);
        assert!(lo > 2.0);
        assert!(report_bounds(&trace).contains("learned window"));
    }
}
