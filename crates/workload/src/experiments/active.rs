//! Shared machinery for the active-resolution delay experiments
//! (Table 2, Figure 9, ablation A3).

use idea_core::{IdeaConfig, IdeaNode, ResolutionRecord};
use idea_net::{SimConfig, SimEngine, Topology};
use idea_types::{NodeId, ObjectId, SimDuration, UpdatePayload};

const OBJ: ObjectId = ObjectId(1);

/// Builds a warmed cluster whose top layer is exactly the `writers` nodes.
pub fn warmed_cluster(
    nodes: usize,
    writers: usize,
    seed: u64,
    parallel_phase2: bool,
) -> SimEngine<IdeaNode> {
    assert!(writers >= 2 && writers <= nodes);
    let cfg = IdeaConfig { parallel_phase2, ..Default::default() };
    let protos: Vec<IdeaNode> =
        (0..nodes).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[OBJ])).collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(nodes, seed),
        SimConfig { seed, ..Default::default() },
        protos,
    );
    // Three write waves form and stabilise the top layer.
    for _ in 0..3 {
        for w in 0..writers {
            eng.with_node(NodeId(w as u32), |p, ctx| {
                p.local_write(OBJ, 1, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
            });
            eng.run_for(SimDuration::from_millis(400));
        }
    }
    eng.run_for(SimDuration::from_secs(3));
    eng
}

/// Runs one active resolution per initiator (the paper runs the scheme four
/// times, "each time we pick a different writer to initiate"), returning
/// the per-run records.
pub fn measure_active_rounds(
    nodes: usize,
    writers: usize,
    seed: u64,
    parallel_phase2: bool,
) -> Vec<ResolutionRecord> {
    let mut eng = warmed_cluster(nodes, writers, seed, parallel_phase2);
    let mut records = Vec::new();
    for initiator in 0..writers {
        // Fresh divergence: one conflicting write per writer.
        for w in 0..writers {
            eng.with_node(NodeId(w as u32), |p, ctx| {
                p.local_write(OBJ, 1, UpdatePayload::Opaque(bytes::Bytes::new()), ctx);
            });
        }
        eng.run_for(SimDuration::from_secs(1));
        let before = eng.node(NodeId(initiator as u32)).resolution_count();
        eng.with_node(NodeId(initiator as u32), |p, ctx| {
            p.demand_active_resolution(OBJ, ctx);
        });
        eng.run_for(SimDuration::from_secs(8));
        let log = eng.node(NodeId(initiator as u32)).resolution_log();
        assert!(log.len() > before, "initiator {initiator} never completed its resolution");
        records.push(log[log.len() - 1].clone());
    }
    records
}

/// Mean of a duration-valued field over records, in milliseconds.
pub fn mean_ms(records: &[ResolutionRecord], f: impl Fn(&ResolutionRecord) -> f64) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records.iter().map(f).sum::<f64>() / records.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmed_cluster_has_expected_top_layer() {
        let eng = warmed_cluster(8, 4, 1, false);
        let members = eng.node(NodeId(0)).report(OBJ).top_members;
        assert_eq!(members.len(), 4);
    }

    #[test]
    fn measure_runs_one_round_per_initiator() {
        let records = measure_active_rounds(8, 3, 2, false);
        assert_eq!(records.len(), 3);
        for r in &records {
            assert_eq!(r.members, 2);
            assert!(r.phase2 > SimDuration::from_millis(50));
        }
    }

    #[test]
    fn mean_ms_averages() {
        let records = measure_active_rounds(8, 3, 3, false);
        let m = mean_ms(&records, |r| r.phase2.as_millis_f64());
        assert!(m > 0.0);
    }
}
