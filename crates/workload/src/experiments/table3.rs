//! Table 3: communication overhead of background resolution.
//!
//! Paper setup (§6.3.1): the automatic airline-booking system over 100 s,
//! background resolution every 20 s (168 messages) vs every 40 s
//! (96 messages); under a flat 1 KB per packet the 20 s run costs
//! 1.68 KB/s — "a very minimal bandwidth cost even for dial-up
//! connections". §6.3.2 then derives the per-round cost (Formula 5:
//! (168+96)/6 = 44) and the Formula-4 optimal rate.
//!
//! Our transfers are batched (one `FetchReply` per member per round) where
//! the authors' prototype appears to count finer-grained packets, so our
//! absolute counts sit lower; the *ratio* between the two periods, the
//! constancy of the per-round cost, and the bandwidth argument are the
//! reproduced shape.

use crate::report::markdown_table;
use crate::runner::{run_booking, BookingRunConfig, BookingRunResult};
use idea_core::resolution::formula4_optimal_rate;
use idea_types::SimDuration;

/// Both Table-3 rows plus the derived quantities.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// The 20 s-period run.
    pub fast: BookingRunResult,
    /// The 40 s-period run.
    pub slow: BookingRunResult,
}

impl Table3Result {
    /// Formula 5: mean messages per round over both runs.
    pub fn msgs_per_round(&self) -> f64 {
        let rounds = self.fast.rounds + self.slow.rounds;
        if rounds == 0 {
            return 0.0;
        }
        (self.fast.resolution_messages + self.slow.resolution_messages) as f64 / rounds as f64
    }
}

/// Runs both Table-3 configurations.
pub fn run(seed: u64) -> Table3Result {
    let base = BookingRunConfig { seed, ..Default::default() };
    Table3Result {
        fast: run_booking(&BookingRunConfig { period: SimDuration::from_secs(20), ..base.clone() }),
        slow: run_booking(&BookingRunConfig { period: SimDuration::from_secs(40), ..base }),
    }
}

/// Renders the paper-vs-measured table plus the Formula-4/5 derivations.
pub fn report(r: &Table3Result) -> String {
    let mut out = String::new();
    out.push_str("Table 3: background-resolution overhead over 100 s (booking system)\n\n");
    out.push_str(&markdown_table(
        &[
            "frequency",
            "paper (# msgs)",
            "measured (# msgs)",
            "measured rounds",
            "measured KB/s @1KB",
        ],
        &[
            vec![
                "every 20 s".into(),
                "168".into(),
                r.fast.resolution_messages.to_string(),
                r.fast.rounds.to_string(),
                format!("{:.2}", r.fast.bandwidth_bps / 8.0 / 1024.0),
            ],
            vec![
                "every 40 s".into(),
                "96".into(),
                r.slow.resolution_messages.to_string(),
                r.slow.rounds.to_string(),
                format!("{:.2}", r.slow.bandwidth_bps / 8.0 / 1024.0),
            ],
        ],
    ));
    let ratio = r.fast.resolution_messages as f64 / r.slow.resolution_messages.max(1) as f64;
    out.push_str(&format!("\nmessage ratio 20 s : 40 s — paper 1.75, measured {ratio:.2}\n"));
    out.push_str(&format!(
        "Formula 5 (mean msgs/round): paper 44 (finer-grained packets), measured {:.1} (batched transfers)\n",
        r.msgs_per_round()
    ));
    // Formula 4 worked example at our measured round cost.
    let c_bits = r.msgs_per_round() * 1024.0 * 8.0;
    let rate = formula4_optimal_rate(1e6, 0.2, c_bits);
    out.push_str(&format!(
        "Formula 4 example: 1 Mbit/s available, 20 % cap, c = {:.0} bits → optimal rate {:.2} rounds/s\n",
        c_bits, rate
    ));
    out.push_str("Paper's bandwidth verdict: minimal even for dial-up — both measured rows are far below 56 kbit/s.\n");
    out
}

/// Shape checks: the 20 s run sends more messages at roughly the period
/// ratio (the paper's 1.75 reflects fractional rounds in its window; whole-
/// round quantization puts ours between 2 and ~2.7), per-round cost is
/// stable across periods (the Formula-5 premise), and bandwidth is far
/// below dial-up.
pub fn shape_holds(r: &Table3Result) -> bool {
    let ratio = r.fast.resolution_messages as f64 / r.slow.resolution_messages.max(1) as f64;
    let per_round_fast = r.fast.msgs_per_round;
    let per_round_slow = r.slow.msgs_per_round;
    let per_round_stable = per_round_fast > 0.0
        && per_round_slow > 0.0
        && (per_round_fast - per_round_slow).abs() / per_round_slow < 0.5;
    (1.4..=3.0).contains(&ratio)
        && per_round_stable
        && r.fast.bandwidth_bps < 56_000.0
        && r.slow.bandwidth_bps < 56_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64) -> Table3Result {
        // Smaller fleet for test speed; the bench runs the 40-node setup.
        let base = BookingRunConfig { nodes: 12, seed, ..Default::default() };
        Table3Result {
            fast: run_booking(&BookingRunConfig {
                period: SimDuration::from_secs(20),
                ..base.clone()
            }),
            slow: run_booking(&BookingRunConfig { period: SimDuration::from_secs(40), ..base }),
        }
    }

    #[test]
    fn table3_shape_holds() {
        let r = quick(7);
        assert!(shape_holds(&r), "fast {:?} slow {:?}", r.fast.rounds, r.slow.rounds);
        // ~5 rounds at 20 s, ~2-3 at 40 s over 100 s.
        assert!(r.fast.rounds >= 4);
        assert!(r.slow.rounds >= 2);
        assert!(r.fast.rounds > r.slow.rounds);
    }

    #[test]
    fn formula5_round_cost_is_positive() {
        let r = quick(8);
        let c = r.msgs_per_round();
        assert!(c > 5.0 && c < 60.0, "per-round cost {c}");
    }

    #[test]
    fn report_cites_paper_numbers() {
        let text = report(&quick(7));
        assert!(text.contains("168"));
        assert!(text.contains("96"));
        assert!(text.contains("Formula 4"));
        assert!(text.contains("Formula 5"));
    }
}
