//! One module per table/figure of the paper's evaluation (§6), plus the
//! design-choice ablations listed in DESIGN.md.
//!
//! Every module exposes a `run*` function returning structured results and
//! a `report(...) -> String` that renders the paper-vs-measured comparison;
//! the `idea-bench` binaries and the `figures` bench are thin wrappers.

pub mod active;
pub mod fig10;
pub mod fig2;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table2;
pub mod table3;

pub mod ablate;
