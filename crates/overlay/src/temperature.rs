//! Updating "temperature" and per-object top-layer membership (§4.1).
//!
//! The top layer for a file — the paper's "temperature overlay" — contains
//! the nodes that "update this file sufficiently frequently and/or recently
//! (hence the term updating 'temperature')". We score each node with an
//! exponentially decayed update count:
//!
//! ```text
//! T(t) = T(t₀) · 2^−(t−t₀)/half_life,   T += 1 on every update
//! ```
//!
//! so frequency and recency both feed the score. Membership uses hysteresis
//! (join above `join_threshold`, leave below `leave_threshold`) so the
//! overlay does not flap, and is capped at `max_size` hottest nodes because
//! the whole point of the top layer is to stay small (§4.1: "it is possible
//! to capture all the active writers with a much smaller subset of the whole
//! network").

use idea_types::{NodeId, ObjectId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Top-layer membership configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopLayerConfig {
    /// Decay half-life of the temperature score.
    pub half_life: SimDuration,
    /// Score at which a node joins the top layer.
    pub join_threshold: f64,
    /// Score below which a member leaves (must be ≤ `join_threshold`).
    pub leave_threshold: f64,
    /// Hard cap on top-layer size (hottest nodes win).
    pub max_size: usize,
}

impl Default for TopLayerConfig {
    fn default() -> Self {
        TopLayerConfig {
            // A writer updating every 5 s (the paper's workload) sustains a
            // score ≈ rate · half_life / ln2 ≈ 0.2 · 30 / 0.69 ≈ 8.7, far
            // above the join threshold; a node silent for two minutes decays
            // out.
            half_life: SimDuration::from_secs(30),
            join_threshold: 1.5,
            leave_threshold: 0.5,
            max_size: 16,
        }
    }
}

/// A decayed score with its last-touch time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Score {
    value: f64,
    at: SimTime,
}

impl Score {
    fn decayed(&self, now: SimTime, half_life: SimDuration) -> f64 {
        let dt = now.saturating_since(self.at).as_micros() as f64;
        let hl = half_life.as_micros() as f64;
        if hl <= 0.0 {
            return self.value;
        }
        self.value * 0.5f64.powf(dt / hl)
    }
}

/// The two-layer view of one shared object: temperatures plus membership.
#[derive(Debug, Clone)]
pub struct TwoLayer {
    object: ObjectId,
    cfg: TopLayerConfig,
    scores: BTreeMap<NodeId, Score>,
    members: Vec<NodeId>,
}

impl TwoLayer {
    /// Builds an empty two-layer view of `object`.
    pub fn new(object: ObjectId, cfg: TopLayerConfig) -> Self {
        assert!(cfg.leave_threshold <= cfg.join_threshold, "hysteresis requires leave ≤ join");
        assert!(cfg.max_size >= 1, "top layer must allow at least one member");
        TwoLayer { object, cfg, scores: BTreeMap::new(), members: Vec::new() }
    }

    /// The object this view tracks.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// The configuration in force.
    pub fn config(&self) -> &TopLayerConfig {
        &self.cfg
    }

    /// Records that `node` updated the object at `now` (observed locally or
    /// learned from a detection message), then refreshes membership.
    pub fn observe_update(&mut self, node: NodeId, now: SimTime) {
        let hl = self.cfg.half_life;
        let e = self.scores.entry(node).or_insert(Score { value: 0.0, at: now });
        let decayed = e.decayed(now, hl);
        *e = Score { value: decayed + 1.0, at: now };
        self.refresh(now);
    }

    /// Current temperature of `node`.
    pub fn temperature(&self, node: NodeId, now: SimTime) -> f64 {
        self.scores.get(&node).map_or(0.0, |s| s.decayed(now, self.cfg.half_life))
    }

    /// Recomputes membership at `now` (called by `observe_update`; exposed
    /// for periodic sweeps so silent nodes decay out).
    pub fn refresh(&mut self, now: SimTime) {
        let hl = self.cfg.half_life;
        // Current members stay while above leave_threshold (hysteresis);
        // non-members join above join_threshold.
        let mut candidates: Vec<(NodeId, f64)> = Vec::new();
        for (&node, score) in &self.scores {
            let t = score.decayed(now, hl);
            let is_member = self.members.contains(&node);
            let keep = if is_member {
                t >= self.cfg.leave_threshold
            } else {
                t >= self.cfg.join_threshold
            };
            if keep {
                candidates.push((node, t));
            }
        }
        // Hottest first; cap at max_size; store sorted by id for determinism.
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        candidates.truncate(self.cfg.max_size);
        let mut members: Vec<NodeId> = candidates.into_iter().map(|(n, _)| n).collect();
        members.sort_unstable();
        self.members = members;
        // Drop stone-cold scores so the map stays small.
        let floor = self.cfg.leave_threshold / 16.0;
        self.scores.retain(|_, s| s.decayed(now, hl) > floor);
    }

    /// Current top-layer members, sorted by node id.
    pub fn top_members(&self) -> &[NodeId] {
        &self.members
    }

    /// True when `node` is currently in the top layer.
    pub fn is_top(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Top-layer peers of `node` (members minus itself).
    pub fn top_peers(&self, node: NodeId) -> Vec<NodeId> {
        self.members.iter().copied().filter(|&m| m != node).collect()
    }

    /// Bottom-layer members: everyone in `0..n` not currently in the top
    /// layer. The bottom layer "covers all the nodes in the network" minus
    /// the hot writers (§4.1).
    pub fn bottom_members(&self, n: usize) -> Vec<NodeId> {
        (0..n as u32).map(NodeId).filter(|node| !self.is_top(*node)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> TopLayerConfig {
        TopLayerConfig::default()
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn paper_workload_forms_four_node_top_layer() {
        // Four writers update every 5 s; after warm-up the top layer is
        // exactly those four (§6.1).
        let mut layer = TwoLayer::new(ObjectId(0), cfg());
        for step in 0..12u64 {
            let now = t(step * 5);
            for w in 0..4u32 {
                layer.observe_update(NodeId(w), now);
            }
        }
        assert_eq!(layer.top_members(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert!(layer.is_top(NodeId(2)));
        assert!(!layer.is_top(NodeId(17)));
    }

    #[test]
    fn silent_node_decays_out() {
        let mut layer = TwoLayer::new(ObjectId(0), cfg());
        for step in 0..6u64 {
            layer.observe_update(NodeId(0), t(step * 5));
        }
        assert!(layer.is_top(NodeId(0)));
        // Two half-life-free minutes later the score is ~2^-4 of ~5.
        layer.refresh(t(30 + 120));
        assert!(!layer.is_top(NodeId(0)));
        assert!(layer.temperature(NodeId(0), t(150)) < cfg().leave_threshold);
    }

    #[test]
    fn hysteresis_keeps_members_between_thresholds() {
        let c = TopLayerConfig {
            half_life: SimDuration::from_secs(30),
            join_threshold: 2.0,
            leave_threshold: 0.5,
            max_size: 8,
        };
        let mut layer = TwoLayer::new(ObjectId(0), c);
        layer.observe_update(NodeId(0), t(0));
        layer.observe_update(NodeId(0), t(1));
        layer.observe_update(NodeId(0), t(2));
        assert!(layer.is_top(NodeId(0)), "joined above join_threshold");
        // Decay to between leave (0.5) and join (2.0): still a member.
        layer.refresh(t(2 + 45));
        let temp = layer.temperature(NodeId(0), t(47));
        assert!(temp < 2.0 && temp > 0.5, "temp {temp}");
        assert!(layer.is_top(NodeId(0)), "hysteresis holds membership");
        // A fresh node with the same temperature would not join.
        let mut other = TwoLayer::new(ObjectId(0), c);
        other.observe_update(NodeId(1), t(0));
        other.refresh(t(10));
        assert!(!other.is_top(NodeId(1)));
    }

    #[test]
    fn max_size_keeps_hottest() {
        let c = TopLayerConfig { max_size: 2, ..cfg() };
        let mut layer = TwoLayer::new(ObjectId(0), c);
        // Node 5 updates most, node 3 moderately, node 9 barely enough.
        for i in 0..8 {
            layer.observe_update(NodeId(5), t(i));
        }
        for i in 0..4 {
            layer.observe_update(NodeId(3), t(i));
        }
        for i in 0..2 {
            layer.observe_update(NodeId(9), t(i));
        }
        layer.refresh(t(8));
        assert_eq!(layer.top_members(), &[NodeId(3), NodeId(5)]);
    }

    #[test]
    fn peers_exclude_self_and_bottom_is_complement() {
        let mut layer = TwoLayer::new(ObjectId(0), cfg());
        for step in 0..8u64 {
            for w in 0..3u32 {
                layer.observe_update(NodeId(w), t(step * 5));
            }
        }
        assert_eq!(layer.top_peers(NodeId(1)), vec![NodeId(0), NodeId(2)]);
        let bottom = layer.bottom_members(6);
        assert_eq!(bottom, vec![NodeId(3), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn temperature_decays_by_half_life() {
        let mut layer = TwoLayer::new(ObjectId(0), cfg());
        layer.observe_update(NodeId(0), t(0));
        let t0 = layer.temperature(NodeId(0), t(0));
        let t30 = layer.temperature(NodeId(0), t(30));
        assert!((t0 - 1.0).abs() < 1e-9);
        assert!((t30 - 0.5).abs() < 1e-9, "one half-life halves the score");
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn invalid_thresholds_panic() {
        let _ = TwoLayer::new(
            ObjectId(0),
            TopLayerConfig { join_threshold: 0.1, leave_threshold: 0.5, ..cfg() },
        );
    }

    proptest! {
        #[test]
        fn membership_is_sorted_and_capped(
            updates in prop::collection::vec((0u32..20, 0u64..300), 0..120),
            max_size in 1usize..6,
        ) {
            let c = TopLayerConfig { max_size, ..cfg() };
            let mut layer = TwoLayer::new(ObjectId(0), c);
            let mut ordered = updates;
            ordered.sort_by_key(|&(_, at)| at);
            for (w, at) in ordered {
                layer.observe_update(NodeId(w), t(at));
            }
            let members = layer.top_members();
            prop_assert!(members.len() <= max_size);
            prop_assert!(members.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn temperature_never_negative(
            updates in prop::collection::vec((0u32..8, 0u64..100), 0..60),
            probe in 0u64..200,
        ) {
            let mut layer = TwoLayer::new(ObjectId(0), cfg());
            let mut ordered = updates;
            ordered.sort_by_key(|&(_, at)| at);
            for (w, at) in ordered {
                layer.observe_update(NodeId(w), t(at));
            }
            for w in 0..8u32 {
                prop_assert!(layer.temperature(NodeId(w), t(probe)) >= 0.0);
            }
        }
    }
}
