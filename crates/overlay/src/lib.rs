//! The two-layer infrastructure of IDEA (§4.1).
//!
//! For each shared object, IDEA splits the network into a small **top layer**
//! ("temperature overlay") of nodes that update the object frequently and/or
//! recently, and a **bottom layer** containing everyone else:
//!
//! * [`ransub`] implements the RanSub protocol (Kostić et al., USITS 2003)
//!   the paper leverages to construct the overlay: every round, each node
//!   receives a uniform random subset of the whole membership, from which it
//!   discovers current hot writers.
//! * [`temperature`] implements the updating-"temperature" score
//!   (exponentially decayed update rate) and the per-object top-layer
//!   membership with join/leave hysteresis.
//! * [`gossip`] implements the lightweight probabilistic broadcast
//!   (lpbcast, Eugster et al., DSN 2001) used for TTL-bounded background
//!   detection in the bottom layer (§4.3, §4.4.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gossip;
pub mod ransub;
pub mod temperature;

pub use gossip::{GossipConfig, GossipMode, GossipRouter, RelayPlan, RumorId};
pub use ransub::{RansubConfig, RansubTree};
pub use temperature::{TopLayerConfig, TwoLayer};
