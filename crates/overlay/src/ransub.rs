//! RanSub: scalable distribution of uniform random subsets.
//!
//! The paper constructs the temperature overlay "by leveraging the RanSub
//! protocol \[9\] to include nodes that update this file sufficiently
//! frequently and/or recently" (§4.1). RanSub runs over a tree in two
//! phases per round:
//!
//! * **collect** — leaves send a sample of themselves up; interior nodes
//!   merge their children's samples with themselves, weighting by subtree
//!   size so the merged sample stays uniform over the subtree;
//! * **distribute** — the root pushes down a uniform sample of the whole
//!   tree; each node hands its children a re-mixed sample.
//!
//! The result: every node receives, each round, a bounded-size uniform
//! random subset of the entire membership — the candidate set from which
//! hot writers are discovered without any node knowing the full membership.
//!
//! [`RansubTree::round`] executes one full round synchronously (used by the
//! detection layer between protocol steps and by the property tests that
//! check uniformity).

use idea_types::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// RanSub configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RansubConfig {
    /// Sample size `s` carried by collect/distribute messages.
    pub sample_size: usize,
    /// Tree fan-out `k`.
    pub fanout: usize,
}

impl Default for RansubConfig {
    fn default() -> Self {
        RansubConfig { sample_size: 5, fanout: 4 }
    }
}

/// A weighted uniform sample: `members` uniformly represent `population`
/// underlying nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// The sampled node ids.
    pub members: Vec<NodeId>,
    /// How many nodes the sample represents.
    pub population: usize,
}

impl Sample {
    /// A sample of a single node (itself).
    pub fn singleton(node: NodeId) -> Self {
        Sample { members: vec![node], population: 1 }
    }

    /// Merges child samples (plus `own`) into one sample of size ≤ `s`,
    /// drawing each slot from a child with probability proportional to the
    /// child's population — the weighting that keeps RanSub samples uniform.
    pub fn merge<R: Rng + ?Sized>(parts: &[Sample], s: usize, rng: &mut R) -> Sample {
        let population: usize = parts.iter().map(|p| p.population).sum();
        if population == 0 {
            return Sample { members: Vec::new(), population: 0 };
        }
        let mut members = Vec::with_capacity(s);
        let mut guard = 0;
        while members.len() < s.min(population) && guard < s * 20 {
            guard += 1;
            // Pick a part weighted by population, then a uniform member.
            let mut ticket = rng.gen_range(0..population);
            let mut chosen = None;
            for p in parts {
                if ticket < p.population {
                    chosen = Some(p);
                    break;
                }
                ticket -= p.population;
            }
            let part = chosen.expect("ticket within total population");
            if part.members.is_empty() {
                continue;
            }
            let m = part.members[rng.gen_range(0..part.members.len())];
            if !members.contains(&m) {
                members.push(m);
            }
        }
        Sample { members, population }
    }
}

/// A k-ary RanSub tree over nodes `0..n`, executing rounds synchronously.
///
/// Node `i`'s children are `k·i + 1 ..= k·i + k` (heap layout), so the tree
/// is balanced and implicit — no membership state beyond `n` is needed.
#[derive(Debug, Clone)]
pub struct RansubTree {
    n: usize,
    cfg: RansubConfig,
}

impl RansubTree {
    /// Builds a tree over `n` nodes.
    pub fn new(n: usize, cfg: RansubConfig) -> Self {
        assert!(cfg.fanout >= 1, "fanout must be at least 1");
        assert!(cfg.sample_size >= 1, "sample size must be at least 1");
        RansubTree { n, cfg }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Children of `node` in the implicit heap layout.
    pub fn children(&self, node: NodeId) -> Vec<NodeId> {
        let i = node.index();
        (1..=self.cfg.fanout)
            .map(|c| self.cfg.fanout * i + c)
            .filter(|&c| c < self.n)
            .map(|c| NodeId(c as u32))
            .collect()
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        let i = node.index();
        if i == 0 {
            None
        } else {
            Some(NodeId(((i - 1) / self.cfg.fanout) as u32))
        }
    }

    /// Depth of the tree (rounds of messages per phase).
    pub fn depth(&self) -> usize {
        if self.n <= 1 {
            return 0;
        }
        let mut d = 0;
        let mut covered = 1usize;
        let mut level = 1usize;
        while covered < self.n {
            level *= self.cfg.fanout;
            covered += level;
            d += 1;
        }
        d
    }

    /// Runs the collect phase, returning each node's merged sample
    /// (`result[i]` covers node `i`'s whole subtree, itself included).
    pub fn collect<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Sample> {
        let mut out: Vec<Option<Sample>> = vec![None; self.n];
        // Post-order: children have larger indices than parents in the heap
        // layout, so a reverse index sweep visits children first.
        for i in (0..self.n).rev() {
            let node = NodeId(i as u32);
            let mut parts = vec![Sample::singleton(node)];
            for c in self.children(node) {
                parts.push(out[c.index()].clone().expect("child computed first"));
            }
            out[i] = Some(Sample::merge(&parts, self.cfg.sample_size, rng));
        }
        out.into_iter().map(|s| s.expect("all computed")).collect()
    }

    /// Runs one full round: collect up, then distribute down. Returns the
    /// uniform random subset delivered to every node.
    pub fn round<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Sample> {
        if self.n == 0 {
            return Vec::new();
        }
        let collected = self.collect(rng);
        // Distribute: the root's sample covers everyone; each node re-mixes
        // what its parent handed down with its own collect result so deep
        // nodes still see a uniform global sample.
        let mut delivered: Vec<Option<Sample>> = vec![None; self.n];
        delivered[0] = Some(collected[0].clone());
        for i in 0..self.n {
            let node = NodeId(i as u32);
            let down = delivered[i].clone().expect("parent set before children");
            for c in self.children(node) {
                let mut remix =
                    Sample::merge(&[down.clone(), collected[0].clone()], self.cfg.sample_size, rng);
                // Both inputs already represent the whole tree; merging them
                // re-mixes membership but must not double-count population.
                remix.population = self.n;
                delivered[c.index()] = Some(remix);
            }
        }
        delivered.into_iter().map(|s| s.expect("all delivered")).collect()
    }

    /// Messages exchanged per round: one collect message per non-root node
    /// plus one distribute message per non-root node.
    pub fn messages_per_round(&self) -> usize {
        if self.n <= 1 {
            0
        } else {
            2 * (self.n - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn tree_shape_is_heap_like() {
        let t = RansubTree::new(10, RansubConfig { sample_size: 3, fanout: 3 });
        assert_eq!(t.children(NodeId(0)), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.children(NodeId(1)), vec![NodeId(4), NodeId(5), NodeId(6)]);
        assert_eq!(t.children(NodeId(3)), vec![]); // 10..12 out of range
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.parent(NodeId(5)), Some(NodeId(1)));
        assert_eq!(t.depth(), 2);
        assert_eq!(t.messages_per_round(), 18);
    }

    #[test]
    fn singleton_tree_trivia() {
        let t = RansubTree::new(1, RansubConfig::default());
        assert_eq!(t.depth(), 0);
        assert_eq!(t.messages_per_round(), 0);
        let mut rng = StdRng::seed_from_u64(0);
        let out = t.round(&mut rng);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].members, vec![NodeId(0)]);
    }

    #[test]
    fn collect_covers_whole_population() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = RansubTree::new(40, RansubConfig { sample_size: 6, fanout: 4 });
        let collected = t.collect(&mut rng);
        assert_eq!(collected[0].population, 40);
        assert_eq!(collected[0].members.len(), 6);
        // Samples never contain duplicates.
        for s in &collected {
            let mut m = s.members.clone();
            m.sort_unstable();
            m.dedup();
            assert_eq!(m.len(), s.members.len());
        }
    }

    #[test]
    fn round_delivers_to_everyone() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = RansubTree::new(25, RansubConfig { sample_size: 4, fanout: 2 });
        let out = t.round(&mut rng);
        assert_eq!(out.len(), 25);
        for s in &out {
            assert!(!s.members.is_empty());
            assert!(s.members.len() <= 4);
        }
    }

    #[test]
    fn samples_are_roughly_uniform() {
        // Over many rounds, every node should appear in delivered samples
        // with comparable frequency — RanSub's headline guarantee.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 30;
        let t = RansubTree::new(n, RansubConfig { sample_size: 5, fanout: 3 });
        let mut freq: HashMap<NodeId, usize> = HashMap::new();
        let rounds = 400;
        for _ in 0..rounds {
            for s in t.round(&mut rng) {
                for m in s.members {
                    *freq.entry(m).or_insert(0) += 1;
                }
            }
        }
        assert_eq!(freq.len(), n, "every node must eventually be sampled");
        let counts: Vec<usize> = freq.values().copied().collect();
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        // Re-mixing biases mildly towards the root's neighbourhood; a 3.5x
        // spread over 400 rounds is comfortably uniform enough for hot-writer
        // discovery (each node still appears hundreds of times).
        assert!(max / min < 3.5, "sample frequencies too skewed: min {min}, max {max}");
    }

    #[test]
    fn merge_respects_sample_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let parts: Vec<Sample> = (0..10u32).map(|i| Sample::singleton(NodeId(i))).collect();
        let m = Sample::merge(&parts, 4, &mut rng);
        assert_eq!(m.population, 10);
        assert_eq!(m.members.len(), 4);
    }

    #[test]
    fn merge_of_empty_is_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Sample::merge(&[], 4, &mut rng);
        assert_eq!(m.population, 0);
        assert!(m.members.is_empty());
    }

    proptest! {
        #[test]
        fn round_never_invents_nodes(n in 1usize..60, seed in 0u64..32,
                                     fanout in 2usize..5, s in 1usize..8) {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = RansubTree::new(n, RansubConfig { sample_size: s, fanout });
            for sample in t.round(&mut rng) {
                prop_assert!(sample.population <= n);
                for m in sample.members {
                    prop_assert!(m.index() < n);
                }
            }
        }

        #[test]
        fn collect_population_equals_subtree(n in 1usize..40, seed in 0u64..16) {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = RansubTree::new(n, RansubConfig { sample_size: 4, fanout: 2 });
            let collected = t.collect(&mut rng);
            // Root represents everyone; populations are consistent with the
            // implicit subtree sizes.
            prop_assert_eq!(collected[0].population, n);
            for i in 0..n {
                let node = NodeId(i as u32);
                let child_total: usize = t
                    .children(node)
                    .iter()
                    .map(|c| collected[c.index()].population)
                    .sum();
                prop_assert_eq!(collected[i].population, child_total + 1);
            }
        }
    }
}
