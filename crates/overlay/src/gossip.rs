//! Lightweight probabilistic broadcast for the bottom layer.
//!
//! "In the bottom layer, it uses gossip-based protocol [6] to check in the
//! background any missed inconsistency by the top-layer" (§4.3), with a TTL
//! bounding the traversal so detection delay stays bounded (§4.4.2:
//! "Currently, we use TTL (Time to Live) to control the traversal of the
//! bottom-layer detection messages").
//!
//! [`GossipRouter`] is engine-agnostic: the caller hands it received rumor
//! ids and it answers with the forwarding decision; the detection protocol
//! (in `idea-detect`) turns those decisions into actual messages.

use idea_types::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Gossip configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Number of peers each node forwards a fresh rumor to.
    pub fanout: usize,
    /// Initial time-to-live (hop budget) of a rumor.
    pub ttl: u8,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig { fanout: 3, ttl: 4 }
    }
}

/// Unique rumor identity: (origin node, origin-local sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RumorId {
    /// Node that started the rumor.
    pub origin: NodeId,
    /// Origin-local sequence number.
    pub seq: u64,
}

/// Forwarding decision for one received rumor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Relay {
    /// Forward to these peers with the decremented TTL.
    Forward {
        /// Chosen peers.
        to: Vec<NodeId>,
        /// TTL to stamp on the forwarded copies.
        ttl: u8,
    },
    /// Already seen or TTL exhausted: drop.
    Drop,
}

/// Per-node gossip state: duplicate suppression plus fanout selection.
#[derive(Debug, Clone)]
pub struct GossipRouter {
    cfg: GossipConfig,
    me: NodeId,
    seen: HashSet<RumorId>,
    next_seq: u64,
}

impl GossipRouter {
    /// Builds a router for node `me`.
    pub fn new(me: NodeId, cfg: GossipConfig) -> Self {
        GossipRouter { cfg, me, seen: HashSet::new(), next_seq: 0 }
    }

    /// The router's configuration.
    pub fn config(&self) -> GossipConfig {
        self.cfg
    }

    /// Starts a new rumor; returns its id, the initial TTL, and the first
    /// hop targets chosen from `peers`.
    pub fn originate<R: Rng + ?Sized>(
        &mut self,
        peers: &[NodeId],
        rng: &mut R,
    ) -> (RumorId, u8, Vec<NodeId>) {
        let id = RumorId { origin: self.me, seq: self.next_seq };
        self.next_seq += 1;
        self.seen.insert(id);
        let to = self.pick_peers(peers, rng);
        (id, self.cfg.ttl, to)
    }

    /// Processes a received rumor copy and decides whether to relay it.
    pub fn on_receive<R: Rng + ?Sized>(
        &mut self,
        id: RumorId,
        ttl: u8,
        peers: &[NodeId],
        rng: &mut R,
    ) -> Relay {
        if !self.seen.insert(id) {
            return Relay::Drop;
        }
        if ttl == 0 {
            return Relay::Drop;
        }
        let to = self.pick_peers(peers, rng);
        if to.is_empty() {
            Relay::Drop
        } else {
            Relay::Forward { to, ttl: ttl - 1 }
        }
    }

    /// True when this node has already processed the rumor.
    pub fn has_seen(&self, id: RumorId) -> bool {
        self.seen.contains(&id)
    }

    /// Number of distinct rumors processed.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }

    /// Uniformly picks up to `fanout` distinct peers, never `me`.
    fn pick_peers<R: Rng + ?Sized>(&self, peers: &[NodeId], rng: &mut R) -> Vec<NodeId> {
        let mut pool: Vec<NodeId> = peers.iter().copied().filter(|&p| p != self.me).collect();
        let k = self.cfg.fanout.min(pool.len());
        // Partial Fisher–Yates: the first k slots become the choice.
        for i in 0..k {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

/// Synchronous spread simulation used by tests and the coverage ablation:
/// starting from `origin`, how many of `n` nodes receive the rumor, and in
/// how many hops? Message loss is left to the network engines; this models
/// the pure protocol.
pub fn simulate_spread<R: Rng + ?Sized>(
    n: usize,
    origin: NodeId,
    cfg: GossipConfig,
    rng: &mut R,
) -> (usize, usize, usize) {
    let peers: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let mut routers: Vec<GossipRouter> =
        (0..n as u32).map(|i| GossipRouter::new(NodeId(i), cfg)).collect();
    let (id, ttl, first) = routers[origin.index()].originate(&peers, rng);
    let mut frontier: Vec<(NodeId, u8)> = first.into_iter().map(|t| (t, ttl)).collect();
    let mut messages = frontier.len();
    let mut hops = 0;
    while !frontier.is_empty() {
        hops += 1;
        let mut next = Vec::new();
        for (node, ttl) in frontier {
            match routers[node.index()].on_receive(id, ttl, &peers, rng) {
                Relay::Forward { to, ttl } => {
                    messages += to.len();
                    next.extend(to.into_iter().map(|t| (t, ttl)));
                }
                Relay::Drop => {}
            }
        }
        frontier = next;
    }
    let covered = routers.iter().filter(|r| r.has_seen(id)).count();
    (covered, hops, messages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn originate_marks_seen_and_picks_fanout() {
        let mut rng = StdRng::seed_from_u64(1);
        let peers: Vec<NodeId> = (0..10u32).map(NodeId).collect();
        let mut r = GossipRouter::new(NodeId(0), GossipConfig { fanout: 3, ttl: 4 });
        let (id, ttl, to) = r.originate(&peers, &mut rng);
        assert_eq!(ttl, 4);
        assert_eq!(to.len(), 3);
        assert!(!to.contains(&NodeId(0)), "never forwards to self");
        assert!(r.has_seen(id));
        // Distinct targets.
        let mut t = to.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut rng = StdRng::seed_from_u64(2);
        let peers: Vec<NodeId> = (0..5u32).map(NodeId).collect();
        let mut r = GossipRouter::new(NodeId(1), GossipConfig::default());
        let id = RumorId { origin: NodeId(0), seq: 9 };
        let first = r.on_receive(id, 3, &peers, &mut rng);
        assert!(matches!(first, Relay::Forward { .. }));
        let second = r.on_receive(id, 3, &peers, &mut rng);
        assert_eq!(second, Relay::Drop);
        assert_eq!(r.seen_count(), 1);
    }

    #[test]
    fn ttl_zero_is_terminal() {
        let mut rng = StdRng::seed_from_u64(3);
        let peers: Vec<NodeId> = (0..5u32).map(NodeId).collect();
        let mut r = GossipRouter::new(NodeId(1), GossipConfig::default());
        let id = RumorId { origin: NodeId(0), seq: 1 };
        assert_eq!(r.on_receive(id, 0, &peers, &mut rng), Relay::Drop);
        // Still marked seen so a later copy with budget is also dropped.
        assert_eq!(r.on_receive(id, 5, &peers, &mut rng), Relay::Drop);
    }

    #[test]
    fn forwarded_ttl_decrements() {
        let mut rng = StdRng::seed_from_u64(4);
        let peers: Vec<NodeId> = (0..6u32).map(NodeId).collect();
        let mut r = GossipRouter::new(NodeId(2), GossipConfig { fanout: 2, ttl: 8 });
        match r.on_receive(RumorId { origin: NodeId(0), seq: 0 }, 5, &peers, &mut rng) {
            Relay::Forward { ttl, to } => {
                assert_eq!(ttl, 4);
                assert_eq!(to.len(), 2);
            }
            Relay::Drop => panic!("fresh rumor with budget must forward"),
        }
    }

    #[test]
    fn spread_covers_most_nodes_with_modest_ttl() {
        // lpbcast's pitch: fanout 3, TTL ~log(n) reaches nearly everyone.
        let mut rng = StdRng::seed_from_u64(7);
        let (covered, hops, messages) =
            simulate_spread(64, NodeId(0), GossipConfig { fanout: 3, ttl: 6 }, &mut rng);
        assert!(covered > 57, "covered only {covered}/64");
        assert!(hops <= 7);
        assert!(messages < 64 * 4, "messages {messages} should stay near n·fanout");
    }

    #[test]
    fn ttl_bounds_hops() {
        let mut rng = StdRng::seed_from_u64(8);
        let (_, hops, _) =
            simulate_spread(128, NodeId(0), GossipConfig { fanout: 2, ttl: 3 }, &mut rng);
        assert!(hops <= 4, "TTL 3 allows at most 4 delivery waves, got {hops}");
    }

    #[test]
    fn tiny_ttl_limits_coverage() {
        let mut rng = StdRng::seed_from_u64(9);
        let (covered, _, _) =
            simulate_spread(128, NodeId(0), GossipConfig { fanout: 2, ttl: 1 }, &mut rng);
        // origin + 2 first-hop + ≤4 second-hop.
        assert!(covered <= 7, "covered {covered}");
    }

    proptest! {
        #[test]
        fn spread_never_exceeds_population(n in 2usize..80, seed in 0u64..32,
                                           fanout in 1usize..5, ttl in 0u8..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let (covered, _, _) =
                simulate_spread(n, NodeId(0), GossipConfig { fanout, ttl }, &mut rng);
            prop_assert!(covered <= n);
            prop_assert!(covered >= 1); // origin always counts
        }

        #[test]
        fn message_complexity_is_fanout_bounded(n in 4usize..64, seed in 0u64..16) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = GossipConfig { fanout: 3, ttl: 5 };
            let (_, _, messages) = simulate_spread(n, NodeId(0), cfg, &mut rng);
            // Each node forwards a rumor at most once to ≤ fanout peers.
            prop_assert!(messages <= n * cfg.fanout);
        }
    }
}
