//! Lightweight probabilistic broadcast for the bottom layer.
//!
//! "In the bottom layer, it uses gossip-based protocol \[6\] to check in the
//! background any missed inconsistency by the top-layer" (§4.3), with a TTL
//! bounding the traversal so detection delay stays bounded (§4.4.2:
//! "Currently, we use TTL (Time to Live) to control the traversal of the
//! bottom-layer detection messages").
//!
//! [`GossipRouter`] is engine-agnostic: the caller hands it received rumor
//! ids and it answers with the forwarding decision; the detection protocol
//! (in `idea-detect`) turns those decisions into actual messages.

use idea_types::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Gossip configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Number of peers each node forwards a fresh rumor to.
    pub fanout: usize,
    /// Initial time-to-live (hop budget) of a rumor.
    pub ttl: u8,
    /// Duplicate-suppression window: the router remembers between
    /// `seen_cap` and `2 × seen_cap` of the most recent rumor ids (two
    /// generations, evicted wholesale), so memory stays bounded no matter
    /// how many rumors a long run produces. A rumor older than the window
    /// may be relayed once more — its TTL still bounds the re-spread, and
    /// in-flight copies (the correctness case) are far younger than any
    /// realistic window.
    pub seen_cap: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig { fanout: 3, ttl: 4, seen_cap: 4096 }
    }
}

/// Unique rumor identity: (origin node, origin-local sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RumorId {
    /// Node that started the rumor.
    pub origin: NodeId,
    /// Origin-local sequence number.
    pub seq: u64,
}

/// Forwarding decision for one received rumor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Relay {
    /// Forward to these peers with the decremented TTL.
    Forward {
        /// Chosen peers.
        to: Vec<NodeId>,
        /// TTL to stamp on the forwarded copies.
        ttl: u8,
    },
    /// Already seen or TTL exhausted: drop.
    Drop,
}

/// Per-node gossip state: duplicate suppression plus fanout selection.
///
/// Duplicate suppression is **generational**: ids go into a current
/// generation; when it reaches `seen_cap` it becomes the previous
/// generation (whose ids are still recognised) and the oldest generation is
/// dropped wholesale. Memory is therefore bounded by `2 × seen_cap` ids —
/// an unbounded `HashSet` here used to grow by one entry per rumor ever
/// relayed, a real leak for long-lived nodes.
#[derive(Debug, Clone)]
pub struct GossipRouter {
    cfg: GossipConfig,
    me: NodeId,
    /// Current duplicate-suppression generation.
    seen: HashSet<RumorId>,
    /// Previous generation (read-only until evicted).
    seen_prev: HashSet<RumorId>,
    next_seq: u64,
}

impl GossipRouter {
    /// Builds a router for node `me`.
    pub fn new(me: NodeId, cfg: GossipConfig) -> Self {
        assert!(cfg.seen_cap > 0, "duplicate suppression needs a positive window");
        GossipRouter { cfg, me, seen: HashSet::new(), seen_prev: HashSet::new(), next_seq: 0 }
    }

    /// The router's configuration.
    pub fn config(&self) -> GossipConfig {
        self.cfg
    }

    /// Records `id` as seen; returns `false` when it was already known.
    fn note_seen(&mut self, id: RumorId) -> bool {
        if self.seen_prev.contains(&id) || !self.seen.insert(id) {
            return false;
        }
        if self.seen.len() >= self.cfg.seen_cap {
            // Rotate generations: drop the old one wholesale.
            self.seen_prev = std::mem::take(&mut self.seen);
        }
        true
    }

    /// Starts a new rumor; returns its id, the initial TTL, and the first
    /// hop targets chosen from `peers`.
    pub fn originate<R: Rng + ?Sized>(
        &mut self,
        peers: &[NodeId],
        rng: &mut R,
    ) -> (RumorId, u8, Vec<NodeId>) {
        let id = RumorId { origin: self.me, seq: self.next_seq };
        self.next_seq += 1;
        self.note_seen(id);
        let to = self.pick_peers(peers, rng);
        (id, self.cfg.ttl, to)
    }

    /// Processes a received rumor copy and decides whether to relay it.
    pub fn on_receive<R: Rng + ?Sized>(
        &mut self,
        id: RumorId,
        ttl: u8,
        peers: &[NodeId],
        rng: &mut R,
    ) -> Relay {
        if !self.note_seen(id) {
            return Relay::Drop;
        }
        if ttl == 0 {
            return Relay::Drop;
        }
        let to = self.pick_peers(peers, rng);
        if to.is_empty() {
            Relay::Drop
        } else {
            Relay::Forward { to, ttl: ttl - 1 }
        }
    }

    /// True when this node still remembers processing the rumor (ids older
    /// than the suppression window are forgotten).
    pub fn has_seen(&self, id: RumorId) -> bool {
        self.seen.contains(&id) || self.seen_prev.contains(&id)
    }

    /// Number of distinct rumor ids currently remembered (bounded by
    /// `2 × seen_cap`).
    pub fn seen_count(&self) -> usize {
        self.seen.len() + self.seen_prev.len()
    }

    /// Uniformly picks up to `fanout` distinct peers, never `me`.
    fn pick_peers<R: Rng + ?Sized>(&self, peers: &[NodeId], rng: &mut R) -> Vec<NodeId> {
        let mut pool: Vec<NodeId> = peers.iter().copied().filter(|&p| p != self.me).collect();
        let k = self.cfg.fanout.min(pool.len());
        // Partial Fisher–Yates: the first k slots become the choice.
        for i in 0..k {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

/// Synchronous spread simulation used by tests and the coverage ablation:
/// starting from `origin`, how many of `n` nodes receive the rumor, and in
/// how many hops? Message loss is left to the network engines; this models
/// the pure protocol.
pub fn simulate_spread<R: Rng + ?Sized>(
    n: usize,
    origin: NodeId,
    cfg: GossipConfig,
    rng: &mut R,
) -> (usize, usize, usize) {
    let peers: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let mut routers: Vec<GossipRouter> =
        (0..n as u32).map(|i| GossipRouter::new(NodeId(i), cfg)).collect();
    let (id, ttl, first) = routers[origin.index()].originate(&peers, rng);
    let mut frontier: Vec<(NodeId, u8)> = first.into_iter().map(|t| (t, ttl)).collect();
    let mut messages = frontier.len();
    let mut hops = 0;
    while !frontier.is_empty() {
        hops += 1;
        let mut next = Vec::new();
        for (node, ttl) in frontier {
            match routers[node.index()].on_receive(id, ttl, &peers, rng) {
                Relay::Forward { to, ttl } => {
                    messages += to.len();
                    next.extend(to.into_iter().map(|t| (t, ttl)));
                }
                Relay::Drop => {}
            }
        }
        frontier = next;
    }
    let covered = routers.iter().filter(|r| r.has_seen(id)).count();
    (covered, hops, messages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn originate_marks_seen_and_picks_fanout() {
        let mut rng = StdRng::seed_from_u64(1);
        let peers: Vec<NodeId> = (0..10u32).map(NodeId).collect();
        let mut r =
            GossipRouter::new(NodeId(0), GossipConfig { fanout: 3, ttl: 4, ..Default::default() });
        let (id, ttl, to) = r.originate(&peers, &mut rng);
        assert_eq!(ttl, 4);
        assert_eq!(to.len(), 3);
        assert!(!to.contains(&NodeId(0)), "never forwards to self");
        assert!(r.has_seen(id));
        // Distinct targets.
        let mut t = to.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut rng = StdRng::seed_from_u64(2);
        let peers: Vec<NodeId> = (0..5u32).map(NodeId).collect();
        let mut r = GossipRouter::new(NodeId(1), GossipConfig::default());
        let id = RumorId { origin: NodeId(0), seq: 9 };
        let first = r.on_receive(id, 3, &peers, &mut rng);
        assert!(matches!(first, Relay::Forward { .. }));
        let second = r.on_receive(id, 3, &peers, &mut rng);
        assert_eq!(second, Relay::Drop);
        assert_eq!(r.seen_count(), 1);
    }

    #[test]
    fn ttl_zero_is_terminal() {
        let mut rng = StdRng::seed_from_u64(3);
        let peers: Vec<NodeId> = (0..5u32).map(NodeId).collect();
        let mut r = GossipRouter::new(NodeId(1), GossipConfig::default());
        let id = RumorId { origin: NodeId(0), seq: 1 };
        assert_eq!(r.on_receive(id, 0, &peers, &mut rng), Relay::Drop);
        // Still marked seen so a later copy with budget is also dropped.
        assert_eq!(r.on_receive(id, 5, &peers, &mut rng), Relay::Drop);
    }

    #[test]
    fn forwarded_ttl_decrements() {
        let mut rng = StdRng::seed_from_u64(4);
        let peers: Vec<NodeId> = (0..6u32).map(NodeId).collect();
        let mut r =
            GossipRouter::new(NodeId(2), GossipConfig { fanout: 2, ttl: 8, ..Default::default() });
        match r.on_receive(RumorId { origin: NodeId(0), seq: 0 }, 5, &peers, &mut rng) {
            Relay::Forward { ttl, to } => {
                assert_eq!(ttl, 4);
                assert_eq!(to.len(), 2);
            }
            Relay::Drop => panic!("fresh rumor with budget must forward"),
        }
    }

    #[test]
    fn spread_covers_most_nodes_with_modest_ttl() {
        // lpbcast's pitch: fanout 3, TTL ~log(n) reaches nearly everyone.
        let mut rng = StdRng::seed_from_u64(7);
        let (covered, hops, messages) = simulate_spread(
            64,
            NodeId(0),
            GossipConfig { fanout: 3, ttl: 6, ..Default::default() },
            &mut rng,
        );
        assert!(covered > 57, "covered only {covered}/64");
        assert!(hops <= 7);
        assert!(messages < 64 * 4, "messages {messages} should stay near n·fanout");
    }

    #[test]
    fn ttl_bounds_hops() {
        let mut rng = StdRng::seed_from_u64(8);
        let (_, hops, _) = simulate_spread(
            128,
            NodeId(0),
            GossipConfig { fanout: 2, ttl: 3, ..Default::default() },
            &mut rng,
        );
        assert!(hops <= 4, "TTL 3 allows at most 4 delivery waves, got {hops}");
    }

    #[test]
    fn tiny_ttl_limits_coverage() {
        let mut rng = StdRng::seed_from_u64(9);
        let (covered, _, _) = simulate_spread(
            128,
            NodeId(0),
            GossipConfig { fanout: 2, ttl: 1, ..Default::default() },
            &mut rng,
        );
        // origin + 2 first-hop + ≤4 second-hop.
        assert!(covered <= 7, "covered {covered}");
    }

    /// The duplicate-suppression memory bound: a long-lived router that
    /// relays rumors forever must hold at most `2 × seen_cap` ids — the
    /// unbounded `HashSet` it replaced grew by one entry per rumor ever
    /// seen.
    #[test]
    fn seen_set_is_bounded_by_generations() {
        let mut rng = StdRng::seed_from_u64(10);
        let peers: Vec<NodeId> = (0..8u32).map(NodeId).collect();
        let cap = 64;
        let cfg = GossipConfig { fanout: 2, ttl: 3, seen_cap: cap };
        let mut r = GossipRouter::new(NodeId(1), cfg);
        for seq in 0..100_000u64 {
            let id = RumorId { origin: NodeId(0), seq };
            let _ = r.on_receive(id, 3, &peers, &mut rng);
            assert!(
                r.seen_count() <= 2 * cap,
                "seen grew to {} after {} rumors (cap {})",
                r.seen_count(),
                seq + 1,
                cap
            );
        }
        // Recent rumors are still suppressed...
        let recent = RumorId { origin: NodeId(0), seq: 99_999 };
        assert!(r.has_seen(recent));
        assert_eq!(r.on_receive(recent, 3, &peers, &mut rng), Relay::Drop);
        // ...while ids far outside the window have been evicted.
        let ancient = RumorId { origin: NodeId(0), seq: 0 };
        assert!(!r.has_seen(ancient), "eviction must eventually forget old ids");
    }

    /// Duplicates arriving while an id straddles the generation rotation
    /// are still suppressed (the previous generation stays searchable).
    #[test]
    fn duplicates_across_rotation_are_suppressed() {
        let mut rng = StdRng::seed_from_u64(11);
        let peers: Vec<NodeId> = (0..8u32).map(NodeId).collect();
        let cap = 16;
        let cfg = GossipConfig { fanout: 2, ttl: 3, seen_cap: cap };
        let mut r = GossipRouter::new(NodeId(1), cfg);
        let marked = RumorId { origin: NodeId(0), seq: 0 };
        assert!(matches!(r.on_receive(marked, 3, &peers, &mut rng), Relay::Forward { .. }));
        // Fill exactly up to one rotation: `marked` moves to the previous
        // generation but must still be recognised.
        for seq in 1..cap as u64 {
            let _ = r.on_receive(RumorId { origin: NodeId(0), seq }, 3, &peers, &mut rng);
        }
        assert!(r.has_seen(marked));
        assert_eq!(r.on_receive(marked, 3, &peers, &mut rng), Relay::Drop);
    }

    proptest! {
        #[test]
        fn spread_never_exceeds_population(n in 2usize..80, seed in 0u64..32,
                                           fanout in 1usize..5, ttl in 0u8..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let (covered, _, _) =
                simulate_spread(n, NodeId(0), GossipConfig { fanout, ttl, ..Default::default() }, &mut rng);
            prop_assert!(covered <= n);
            prop_assert!(covered >= 1); // origin always counts
        }

        #[test]
        fn message_complexity_is_fanout_bounded(n in 4usize..64, seed in 0u64..16) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = GossipConfig { fanout: 3, ttl: 5, ..Default::default() };
            let (_, _, messages) = simulate_spread(n, NodeId(0), cfg, &mut rng);
            // Each node forwards a rumor at most once to ≤ fanout peers.
            prop_assert!(messages <= n * cfg.fanout);
        }
    }
}
