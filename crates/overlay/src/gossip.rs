//! Lightweight probabilistic broadcast for the bottom layer.
//!
//! "In the bottom layer, it uses gossip-based protocol \[6\] to check in the
//! background any missed inconsistency by the top-layer" (§4.3), with a TTL
//! bounding the traversal so detection delay stays bounded (§4.4.2:
//! "Currently, we use TTL (Time to Live) to control the traversal of the
//! bottom-layer detection messages").
//!
//! ## Eager vs lazy dissemination
//!
//! The original plane flooded full rumor bodies to every chosen peer —
//! `O(fanout · N)` bodies per rumor, the dominant traffic at scale. The
//! router now supports a Plumtree-style split ([`GossipMode::Lazy`]): each
//! node keeps a **stable view** of `fanout` gossip neighbours, and every
//! view link is persistently either **eager** (full bodies) or **lazy**
//! (a compact [`RumorId`] digest — "IHAVE"). Links start eager, so the
//! first rumors flood exactly like the classic plane; a duplicate body is
//! answered with a *prune*, demoting the link on **both** ends — the
//! sender stops pushing bodies down it (the direction that wasted the
//! copy) and the receiver stops pushing back. The surviving eager links
//! converge toward a spanning tree carrying `~N` bodies per rumor while
//! the pruned links pay only digest bytes. A digest receiver missing the
//! body pulls it from the advertiser, which *grafts* the link back to
//! eager on both sides — pruning can never partition the dissemination.
//!
//! [`GossipRouter`] is engine-agnostic: the caller hands it received rumor
//! ids and it answers with a [`RelayPlan`]; the detection protocol (in
//! `idea-core`) turns plans into actual messages, owns the rumor bodies,
//! and runs the pull timers.

use idea_types::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// How a relay plan transports rumors to its chosen peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GossipMode {
    /// Full rumor bodies to every chosen peer (the classic flood).
    Eager,
    /// Plumtree-style per-peer link split over a stable view: bodies on
    /// eager links, compact id digests on pruned (lazy) links, missing
    /// bodies pulled on demand. Links start eager and duplicates prune
    /// them, so body traffic converges toward one copy per node.
    Lazy,
}

/// Gossip configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Number of peers each node forwards a fresh rumor to.
    pub fanout: usize,
    /// Initial time-to-live (hop budget) of a rumor.
    pub ttl: u8,
    /// Duplicate-suppression window: the router remembers between
    /// `seen_cap` and `2 × seen_cap` of the most recent rumor ids (two
    /// generations, evicted wholesale), so memory stays bounded no matter
    /// how many rumors a long run produces. A rumor older than the window
    /// may be relayed once more — its TTL still bounds the re-spread, and
    /// in-flight copies (the correctness case) are far younger than any
    /// realistic window.
    pub seen_cap: usize,
    /// Transport split for relay plans. [`GossipMode::Eager`] reproduces
    /// the original flood exactly; [`GossipMode::Lazy`] keeps a stable
    /// `fanout`-sized view with persistent per-peer eager/lazy link state.
    pub mode: GossipMode,
    /// In lazy mode, the eager floor: when *every* view link has been
    /// pruned, this many links are grafted back so bodies keep moving
    /// (a rumor must never stall on an all-lazy view). Clamped to the
    /// view size; values below 1 are treated as 1.
    pub eager_fanout: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            fanout: 3,
            ttl: 4,
            seen_cap: 4096,
            // Lazy by default: measured at N ∈ {160, 320, 640} it moves
            // 0.56–0.81× the eager flood's gossip bytes for the same
            // sweeps. Pinned traces that predate the flip set
            // `GossipMode::Eager` explicitly.
            mode: GossipMode::Lazy,
            eager_fanout: 1,
        }
    }
}

/// Unique rumor identity: (origin node, origin-local sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RumorId {
    /// Node that started the rumor.
    pub origin: NodeId,
    /// Origin-local sequence number.
    pub seq: u64,
}

/// Encoded bytes per digest entry: origin (4) + seq (8) + ttl (1).
pub const DIGEST_ENTRY_BYTES: usize = 13;

/// Encodes `(rumor id, remaining ttl)` advertisements into the compact
/// wire form ([`DIGEST_ENTRY_BYTES`] per entry, little-endian). This is
/// the byte layout the accounting layer charges for digests, kept as a
/// real codec so the cost model and any future external transport agree.
pub fn encode_digest(entries: &[(RumorId, u8)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * DIGEST_ENTRY_BYTES);
    for (id, ttl) in entries {
        out.extend_from_slice(&id.origin.0.to_le_bytes());
        out.extend_from_slice(&id.seq.to_le_bytes());
        out.push(*ttl);
    }
    out
}

/// Decodes a digest produced by [`encode_digest`]. Returns `None` when the
/// buffer is not a whole number of entries.
pub fn decode_digest(bytes: &[u8]) -> Option<Vec<(RumorId, u8)>> {
    if !bytes.len().is_multiple_of(DIGEST_ENTRY_BYTES) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / DIGEST_ENTRY_BYTES);
    for chunk in bytes.chunks_exact(DIGEST_ENTRY_BYTES) {
        let origin = NodeId(u32::from_le_bytes(chunk[0..4].try_into().ok()?));
        let seq = u64::from_le_bytes(chunk[4..12].try_into().ok()?);
        out.push((RumorId { origin, seq }, chunk[12]));
    }
    Some(out)
}

/// Forwarding decision for one rumor: which peers get the full body
/// (eager links), which get only its id (lazy links), and the TTL to stamp
/// on the forwarded copies. In [`GossipMode::Eager`] `lazy` is always
/// empty and the plan degenerates to the classic flood.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelayPlan {
    /// Peers receiving the full rumor body.
    pub eager: Vec<NodeId>,
    /// Peers receiving only the id digest ("IHAVE").
    pub lazy: Vec<NodeId>,
    /// TTL to stamp on the forwarded copies (bodies and digests alike).
    pub ttl: u8,
}

impl RelayPlan {
    /// Total peers contacted by this plan.
    pub fn contacts(&self) -> usize {
        self.eager.len() + self.lazy.len()
    }

    /// True when the plan contacts nobody.
    pub fn is_empty(&self) -> bool {
        self.eager.is_empty() && self.lazy.is_empty()
    }
}

/// Per-node gossip state: duplicate suppression, fanout selection, and (in
/// lazy mode) the stable view with its persistent eager/lazy link split.
///
/// Duplicate suppression is **generational**: ids go into a current
/// generation; when it reaches `seen_cap` it becomes the previous
/// generation (whose ids are still recognised) and the oldest generation is
/// dropped wholesale. Memory is therefore bounded by `2 × seen_cap` ids —
/// an unbounded `HashSet` here used to grow by one entry per rumor ever
/// relayed, a real leak for long-lived nodes.
#[derive(Debug, Clone)]
pub struct GossipRouter {
    cfg: GossipConfig,
    me: NodeId,
    /// Current duplicate-suppression generation.
    seen: HashSet<RumorId>,
    /// Previous generation (read-only until evicted).
    seen_prev: HashSet<RumorId>,
    /// Lazy mode's stable gossip neighbourhood: up to `fanout` peers,
    /// sampled once on first use. Eager mode never populates it (it keeps
    /// the classic per-rumor random pick).
    view: Vec<NodeId>,
    /// View links currently pruned to the lazy side (duplicate bodies
    /// arrived on them). Bounded by the view, so repair state cannot grow
    /// with deployment size.
    lazy_links: HashSet<NodeId>,
    next_seq: u64,
}

impl GossipRouter {
    /// Builds a router for node `me`.
    pub fn new(me: NodeId, cfg: GossipConfig) -> Self {
        assert!(cfg.seen_cap > 0, "duplicate suppression needs a positive window");
        GossipRouter {
            cfg,
            me,
            seen: HashSet::new(),
            seen_prev: HashSet::new(),
            view: Vec::new(),
            lazy_links: HashSet::new(),
            next_seq: 0,
        }
    }

    /// The router's configuration.
    pub fn config(&self) -> GossipConfig {
        self.cfg
    }

    /// Records `id` as seen; returns `false` when it was already known.
    fn note_seen(&mut self, id: RumorId) -> bool {
        if self.seen_prev.contains(&id) || !self.seen.insert(id) {
            return false;
        }
        if self.seen.len() >= self.cfg.seen_cap {
            // Rotate generations: drop the old one wholesale.
            self.seen_prev = std::mem::take(&mut self.seen);
        }
        true
    }

    /// Starts a new rumor; returns its id, the initial TTL, and the first
    /// hop plan chosen from `peers`.
    pub fn originate<R: Rng + ?Sized>(
        &mut self,
        peers: &[NodeId],
        rng: &mut R,
    ) -> (RumorId, u8, RelayPlan) {
        let id = RumorId { origin: self.me, seq: self.next_seq };
        self.next_seq += 1;
        self.note_seen(id);
        let plan = match self.cfg.mode {
            GossipMode::Eager => RelayPlan {
                eager: self.pick_peers(peers, None, rng),
                lazy: Vec::new(),
                ttl: self.cfg.ttl,
            },
            GossipMode::Lazy => {
                self.ensure_view(peers, rng);
                self.view_plan(None, self.cfg.ttl)
            }
        };
        (id, self.cfg.ttl, plan)
    }

    /// Processes a received rumor body and decides whether to relay it.
    ///
    /// `from` is the peer the body arrived from: it is excluded from the
    /// relay targets (pushing a rumor straight back to its sender is pure
    /// redundancy), and a duplicate arrival demotes it. Pass `None` for
    /// locally injected bodies.
    ///
    /// Returns `None` when the rumor is a duplicate, its TTL is exhausted,
    /// or no eligible peer remains.
    pub fn on_receive<R: Rng + ?Sized>(
        &mut self,
        id: RumorId,
        ttl: u8,
        from: Option<NodeId>,
        peers: &[NodeId],
        rng: &mut R,
    ) -> Option<RelayPlan> {
        if !self.note_seen(id) {
            // Duplicate body: the sender wasted a full push on us — prune
            // that link to the lazy side from now on.
            if let Some(p) = from {
                self.demote(p);
            }
            return None;
        }
        if self.cfg.mode == GossipMode::Lazy {
            self.ensure_view(peers, rng);
        }
        if ttl == 0 {
            return None;
        }
        let plan = match self.cfg.mode {
            GossipMode::Eager => RelayPlan {
                eager: self.pick_peers(peers, from, rng),
                lazy: Vec::new(),
                ttl: ttl - 1,
            },
            GossipMode::Lazy => self.view_plan(from, ttl - 1),
        };
        if plan.is_empty() {
            None
        } else {
            Some(plan)
        }
    }

    /// True when this node still remembers processing the rumor (ids older
    /// than the suppression window are forgotten).
    pub fn has_seen(&self, id: RumorId) -> bool {
        self.seen.contains(&id) || self.seen_prev.contains(&id)
    }

    /// True when a digest for `id` should trigger a pull: the body has not
    /// been processed here yet.
    pub fn wants_body(&self, id: RumorId) -> bool {
        !self.has_seen(id)
    }

    /// Number of distinct rumor ids currently remembered (bounded by
    /// `2 × seen_cap`).
    pub fn seen_count(&self) -> usize {
        self.seen.len() + self.seen_prev.len()
    }

    /// Rumor ids currently remembered, sorted (test/harness introspection
    /// for delivery-set comparisons).
    pub fn seen_ids(&self) -> Vec<RumorId> {
        let mut ids: Vec<RumorId> = self.seen.union(&self.seen_prev).copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Prunes the view link to `peer` to the lazy side — called when a
    /// duplicate body arrives on it (the push was pure redundancy).
    /// Ignored for peers outside the view, so repair state stays bounded
    /// by the view size.
    pub fn demote(&mut self, peer: NodeId) {
        if self.view.contains(&peer) {
            self.lazy_links.insert(peer);
        }
    }

    /// Re-promotes the link to `peer` to eager (graft) — called when the
    /// peer pulls a body from us or answers our pull, proving the lazy
    /// link was load-bearing.
    pub fn graft(&mut self, peer: NodeId) {
        self.lazy_links.remove(&peer);
    }

    /// True when the view link to `peer` is currently pruned.
    pub fn is_demoted(&self, peer: NodeId) -> bool {
        self.lazy_links.contains(&peer)
    }

    /// The stable lazy-mode view (empty in eager mode or before first use).
    pub fn view(&self) -> &[NodeId] {
        &self.view
    }

    /// Samples the stable view on first use: up to `fanout` distinct peers.
    /// Membership is assumed stable (all engines hand the same `everyone`
    /// slice for the lifetime of a run).
    fn ensure_view<R: Rng + ?Sized>(&mut self, peers: &[NodeId], rng: &mut R) {
        if self.view.is_empty() {
            self.view = self.pick_peers(peers, None, rng);
        }
    }

    /// A relay plan over the stable view: eager links carry the body, lazy
    /// links the digest, the arrival link (`from`) is excluded. When every
    /// candidate is pruned, the first [`GossipConfig::eager_fanout`] links
    /// (at least one) are grafted back so the rumor keeps moving.
    fn view_plan(&mut self, from: Option<NodeId>, ttl: u8) -> RelayPlan {
        let mut eager = Vec::new();
        let mut lazy = Vec::new();
        for &p in &self.view {
            if Some(p) == from {
                continue;
            }
            if self.lazy_links.contains(&p) {
                lazy.push(p);
            } else {
                eager.push(p);
            }
        }
        if eager.is_empty() && !lazy.is_empty() {
            let floor = self.cfg.eager_fanout.max(1).min(lazy.len());
            for p in lazy.drain(..floor) {
                self.lazy_links.remove(&p);
                eager.push(p);
            }
        }
        RelayPlan { eager, lazy, ttl }
    }

    /// Uniformly picks up to `fanout` distinct peers, never `me` and never
    /// the sender the rumor arrived from.
    fn pick_peers<R: Rng + ?Sized>(
        &self,
        peers: &[NodeId],
        from: Option<NodeId>,
        rng: &mut R,
    ) -> Vec<NodeId> {
        let mut pool: Vec<NodeId> =
            peers.iter().copied().filter(|&p| p != self.me && Some(p) != from).collect();
        let k = self.cfg.fanout.min(pool.len());
        // Partial Fisher–Yates: the first k slots become the choice.
        for i in 0..k {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

/// Message/coverage tallies of one simulated spread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpreadStats {
    /// Nodes that processed the rumor body.
    pub covered: usize,
    /// Delivery waves until the spread died out.
    pub hops: usize,
    /// Total messages: bodies + digests + pulls + pull replies.
    pub messages: usize,
    /// Full-body messages (eager pushes plus pull replies).
    pub bodies: usize,
    /// Digest messages sent on lazy links.
    pub digests: usize,
    /// Pull requests issued by digest receivers missing the body.
    pub pulls: usize,
    /// Prune notifications sent back to duplicate pushers.
    pub prunes: usize,
}

/// Synchronous multi-rumor spread simulation used by tests and the
/// coverage ablation. Routers persist across rumors, so lazy mode's
/// prune/graft link state accumulates exactly as it does in the engines:
/// the first rumor floods (all links eager), later rumors ride the pruned
/// link split. Digest receivers missing the body pull it from the
/// advertiser once the flood dies out (loss-free semantics; loss
/// injection is the network engines' job).
pub struct SpreadSim {
    peers: Vec<NodeId>,
    routers: Vec<GossipRouter>,
}

impl SpreadSim {
    /// A fresh `n`-node population with per-node routers.
    pub fn new(n: usize, cfg: GossipConfig) -> Self {
        SpreadSim {
            peers: (0..n as u32).map(NodeId).collect(),
            routers: (0..n as u32).map(|i| GossipRouter::new(NodeId(i), cfg)).collect(),
        }
    }

    /// The router of `node` (test introspection).
    pub fn router(&self, node: NodeId) -> &GossipRouter {
        &self.routers[node.index()]
    }

    /// Spreads one rumor from `origin` through the current link state and
    /// tallies its traffic.
    ///
    /// Bodies move in synchronous waves; digests are noted as they arrive
    /// but — modelling the engines' pull timer — a node only pulls once
    /// the body flood has died out without reaching it. A pull grafts the
    /// link eager on both ends (it was load-bearing), so the next rumor
    /// rides the repaired tree and pruning never strands coverage.
    pub fn spread<R: Rng + ?Sized>(&mut self, origin: NodeId, rng: &mut R) -> SpreadStats {
        let mut stats = SpreadStats::default();

        // A full-body delivery in flight: receiver, stamped TTL, sender.
        struct Body {
            node: NodeId,
            ttl: u8,
            from: NodeId,
        }
        // Digest advertisements, in arrival order: (receiver, advertiser).
        let mut advertised: Vec<(NodeId, NodeId)> = Vec::new();

        let mut frontier: Vec<Body> = Vec::new();
        let queue_plan = |plan: &RelayPlan,
                          from: NodeId,
                          frontier: &mut Vec<Body>,
                          advertised: &mut Vec<(NodeId, NodeId)>,
                          stats: &mut SpreadStats| {
            stats.messages += plan.contacts();
            stats.bodies += plan.eager.len();
            stats.digests += plan.lazy.len();
            for &t in &plan.eager {
                frontier.push(Body { node: t, ttl: plan.ttl, from });
            }
            for &t in &plan.lazy {
                advertised.push((t, from));
            }
        };

        let (id, _ttl, first) = self.routers[origin.index()].originate(&self.peers, rng);
        queue_plan(&first, origin, &mut frontier, &mut advertised, &mut stats);

        loop {
            // Body waves until the flood dies out.
            while !frontier.is_empty() {
                stats.hops += 1;
                let mut next = Vec::new();
                for c in frontier {
                    let was_dup = self.routers[c.node.index()].has_seen(id);
                    if let Some(plan) = self.routers[c.node.index()].on_receive(
                        id,
                        c.ttl,
                        Some(c.from),
                        &self.peers,
                        rng,
                    ) {
                        queue_plan(&plan, c.node, &mut next, &mut advertised, &mut stats);
                    } else if was_dup
                        && self.routers[c.node.index()].config().mode == GossipMode::Lazy
                    {
                        // Duplicate push: answer with a PRUNE so the
                        // *sender* demotes its outgoing link — that is the
                        // link that wasted the body.
                        stats.messages += 1;
                        stats.prunes += 1;
                        self.routers[c.from.index()].demote(c.node);
                    }
                }
                frontier = next;
            }
            // Pull timers fire: nodes the flood missed fetch the body from
            // their first advertiser. Pull replies are terminal (TTL 0):
            // they repair exactly the missed delivery and must not re-flood
            // past the sweep's TTL budget — the graft handles future rumors.
            let pending = std::mem::take(&mut advertised);
            let mut pulled = false;
            let mut pulled_by: HashSet<NodeId> = HashSet::new();
            for (node, from) in pending {
                if !self.routers[node.index()].wants_body(id) || !pulled_by.insert(node) {
                    continue;
                }
                stats.messages += 2;
                stats.pulls += 1;
                stats.bodies += 1;
                self.routers[from.index()].graft(node);
                self.routers[node.index()].graft(from);
                frontier.push(Body { node, ttl: 0, from });
                pulled = true;
            }
            if !pulled {
                break;
            }
        }
        stats.covered = self.routers.iter().filter(|r| r.has_seen(id)).count();
        stats
    }
}

/// One-shot spread of a single rumor through a fresh population — in lazy
/// mode this is the cold-start wave (all links still eager); use
/// [`SpreadSim`] for steady-state behaviour.
pub fn simulate_spread_stats<R: Rng + ?Sized>(
    n: usize,
    origin: NodeId,
    cfg: GossipConfig,
    rng: &mut R,
) -> SpreadStats {
    SpreadSim::new(n, cfg).spread(origin, rng)
}

/// Compatibility wrapper over [`simulate_spread_stats`] returning the
/// historical `(covered, hops, messages)` triple.
pub fn simulate_spread<R: Rng + ?Sized>(
    n: usize,
    origin: NodeId,
    cfg: GossipConfig,
    rng: &mut R,
) -> (usize, usize, usize) {
    let s = simulate_spread_stats(n, origin, cfg, rng);
    (s.covered, s.hops, s.messages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lazy_cfg(fanout: usize, eager_fanout: usize, ttl: u8) -> GossipConfig {
        GossipConfig { fanout, ttl, mode: GossipMode::Lazy, eager_fanout, ..Default::default() }
    }

    /// The classic flood these shape tests were written against — pinned
    /// explicitly now that the default mode is lazy.
    fn eager_cfg(fanout: usize, ttl: u8) -> GossipConfig {
        GossipConfig { fanout, ttl, mode: GossipMode::Eager, ..Default::default() }
    }

    #[test]
    fn originate_marks_seen_and_picks_fanout() {
        let mut rng = StdRng::seed_from_u64(1);
        let peers: Vec<NodeId> = (0..10u32).map(NodeId).collect();
        let mut r = GossipRouter::new(NodeId(0), eager_cfg(3, 4));
        let (id, ttl, plan) = r.originate(&peers, &mut rng);
        assert_eq!(ttl, 4);
        assert_eq!(plan.ttl, 4);
        assert!(plan.lazy.is_empty(), "eager mode never plans digests");
        assert_eq!(plan.eager.len(), 3);
        assert!(!plan.eager.contains(&NodeId(0)), "never forwards to self");
        assert!(r.has_seen(id));
        // Distinct targets.
        let mut t = plan.eager.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicates_are_dropped_and_demote_the_sender() {
        let mut rng = StdRng::seed_from_u64(2);
        let peers: Vec<NodeId> = (0..5u32).map(NodeId).collect();
        // fanout 4 over 4 other nodes: the view is the whole population,
        // so every sender below is a view link.
        let mut r = GossipRouter::new(NodeId(1), lazy_cfg(4, 1, 3));
        let id = RumorId { origin: NodeId(0), seq: 9 };
        let first = r.on_receive(id, 3, Some(NodeId(0)), &peers, &mut rng);
        assert!(first.is_some());
        let second = r.on_receive(id, 3, Some(NodeId(3)), &peers, &mut rng);
        assert_eq!(second, None);
        assert_eq!(r.seen_count(), 1);
        // The duplicate pusher's link got pruned; the first sender's did not.
        assert!(r.is_demoted(NodeId(3)));
        assert!(!r.is_demoted(NodeId(0)));
        // A pull from the pruned peer grafts it back.
        r.graft(NodeId(3));
        assert!(!r.is_demoted(NodeId(3)));
    }

    #[test]
    fn ttl_zero_is_terminal() {
        let mut rng = StdRng::seed_from_u64(3);
        let peers: Vec<NodeId> = (0..5u32).map(NodeId).collect();
        let mut r = GossipRouter::new(NodeId(1), GossipConfig::default());
        let id = RumorId { origin: NodeId(0), seq: 1 };
        assert_eq!(r.on_receive(id, 0, None, &peers, &mut rng), None);
        // Still marked seen so a later copy with budget is also dropped.
        assert_eq!(r.on_receive(id, 5, None, &peers, &mut rng), None);
    }

    #[test]
    fn forwarded_ttl_decrements() {
        let mut rng = StdRng::seed_from_u64(4);
        let peers: Vec<NodeId> = (0..6u32).map(NodeId).collect();
        let mut r = GossipRouter::new(NodeId(2), eager_cfg(2, 8));
        match r.on_receive(RumorId { origin: NodeId(0), seq: 0 }, 5, None, &peers, &mut rng) {
            Some(plan) => {
                assert_eq!(plan.ttl, 4);
                assert_eq!(plan.eager.len(), 2);
            }
            None => panic!("fresh rumor with budget must forward"),
        }
    }

    /// Sender exclusion on a 3-node line: node 0 originates with fanout 2,
    /// so every relay's candidate pool is {the third node} — a rumor is
    /// never pushed back to the peer it just arrived from, and the spread
    /// costs exactly 4 messages (0→1, 0→2, 1→2, 2→1) instead of the 6 a
    /// sender-oblivious flood could emit.
    #[test]
    fn sender_exclusion_on_three_node_line() {
        let peers: Vec<NodeId> = (0..3u32).map(NodeId).collect();
        let cfg = eager_cfg(2, 8);
        for seed in 0..16 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut routers: Vec<GossipRouter> =
                (0..3u32).map(|i| GossipRouter::new(NodeId(i), cfg)).collect();
            let (id, _ttl, plan) = routers[0].originate(&peers, &mut rng);
            let mut total = plan.eager.len();
            let mut frontier: Vec<(NodeId, u8, NodeId)> =
                plan.eager.iter().map(|&t| (t, plan.ttl, NodeId(0))).collect();
            while let Some((node, ttl, from)) = frontier.pop() {
                if let Some(p) =
                    routers[node.index()].on_receive(id, ttl, Some(from), &peers, &mut rng)
                {
                    assert!(!p.eager.contains(&from), "pushed rumor back to its sender");
                    total += p.eager.len();
                    frontier.extend(p.eager.iter().map(|&t| (t, p.ttl, node)));
                }
            }
            assert_eq!(total, 4, "seed {seed}: line spread must cost exactly 4 messages");
            assert!(routers.iter().all(|r| r.has_seen(id)));
        }
    }

    /// Fresh lazy routers start with every view link eager (the cold-start
    /// wave floods like the classic plane); pruning a link moves it to the
    /// lazy side of subsequent plans, persistently.
    #[test]
    fn pruned_view_links_move_to_the_lazy_side() {
        let mut rng = StdRng::seed_from_u64(5);
        let peers: Vec<NodeId> = (0..10u32).map(NodeId).collect();
        let mut r = GossipRouter::new(NodeId(0), lazy_cfg(4, 1, 6));
        let (_id, _ttl, plan) = r.originate(&peers, &mut rng);
        assert_eq!(plan.eager.len(), 4, "links start eager");
        assert!(plan.lazy.is_empty());
        let pruned = plan.eager[0];
        r.demote(pruned);
        let (_id, _ttl, plan) = r.originate(&peers, &mut rng);
        assert_eq!(plan.eager.len(), 3);
        assert_eq!(plan.lazy, vec![pruned]);
        // Disjoint link sets, and the split is stable without randomness.
        assert!(plan.eager.iter().all(|e| !plan.lazy.contains(e)));
        let (_id, _ttl, again) = r.originate(&peers, &mut rng);
        assert_eq!(again.lazy, vec![pruned]);
    }

    #[test]
    fn demoted_peers_drift_to_lazy_links() {
        let peers: Vec<NodeId> = (0..4u32).map(NodeId).collect();
        let mut r = GossipRouter::new(NodeId(0), lazy_cfg(3, 1, 6));
        let mut rng = StdRng::seed_from_u64(1);
        // First originate samples the view: all 3 other nodes.
        let _ = r.originate(&peers, &mut rng);
        r.demote(NodeId(1));
        r.demote(NodeId(2));
        // The split is persistent state, identical on every later rumor.
        for round in 0..8 {
            let (_id, _ttl, plan) = r.originate(&peers, &mut rng);
            assert_eq!(plan.eager, vec![NodeId(3)], "round {round}");
            assert_eq!(plan.lazy.len(), 2);
        }
    }

    #[test]
    fn all_demoted_still_fills_eager_floor() {
        let peers: Vec<NodeId> = (0..4u32).map(NodeId).collect();
        let mut r = GossipRouter::new(NodeId(0), lazy_cfg(3, 2, 6));
        let mut rng = StdRng::seed_from_u64(1);
        let _ = r.originate(&peers, &mut rng);
        for p in 1..4 {
            r.demote(NodeId(p));
        }
        let (_id, _ttl, plan) = r.originate(&peers, &mut rng);
        assert_eq!(plan.eager.len(), 2, "bodies must still move when every link is pruned");
        assert_eq!(plan.lazy.len(), 1);
        // The floor grafts the promoted links: the state is repaired, not
        // overridden per plan.
        assert_eq!(plan.eager.iter().filter(|&&p| r.is_demoted(p)).count(), 0);
    }

    #[test]
    fn digest_codec_round_trips() {
        let entries = vec![
            (RumorId { origin: NodeId(0), seq: 0 }, 4),
            (RumorId { origin: NodeId(7), seq: u64::MAX }, 0),
            (RumorId { origin: NodeId(u32::MAX), seq: 12345 }, 255),
        ];
        let bytes = encode_digest(&entries);
        assert_eq!(bytes.len(), entries.len() * DIGEST_ENTRY_BYTES);
        assert_eq!(decode_digest(&bytes), Some(entries));
        assert_eq!(decode_digest(&[0u8; 5]), None, "partial entries must be rejected");
        assert_eq!(decode_digest(&[]), Some(vec![]));
    }

    #[test]
    fn spread_covers_most_nodes_with_modest_ttl() {
        // lpbcast's pitch: fanout 3, TTL ~log(n) reaches nearly everyone.
        let mut rng = StdRng::seed_from_u64(7);
        let (covered, hops, messages) = simulate_spread(64, NodeId(0), eager_cfg(3, 6), &mut rng);
        assert!(covered > 57, "covered only {covered}/64");
        assert!(hops <= 7);
        assert!(messages < 64 * 4, "messages {messages} should stay near n·fanout");
    }

    /// The Plumtree payoff in steady state: after a few rumors have pruned
    /// the redundant links, a lazy spread moves far fewer bodies than the
    /// eager flood for comparable coverage — the redundancy rides on
    /// digests.
    #[test]
    fn lazy_spread_moves_fewer_bodies_for_same_coverage() {
        let mut eager_rng = StdRng::seed_from_u64(21);
        let mut lazy_rng = StdRng::seed_from_u64(21);
        let mut eager_sim = SpreadSim::new(64, eager_cfg(3, 6));
        let mut lazy_sim = SpreadSim::new(64, lazy_cfg(3, 1, 6));
        // Warm-up: let duplicates prune the lazy link state.
        for _ in 0..8 {
            let _ = eager_sim.spread(NodeId(0), &mut eager_rng);
            let _ = lazy_sim.spread(NodeId(0), &mut lazy_rng);
        }
        let eager = eager_sim.spread(NodeId(0), &mut eager_rng);
        let lazy = lazy_sim.spread(NodeId(0), &mut lazy_rng);
        assert!(
            lazy.covered + 8 >= eager.covered,
            "lazy coverage collapsed: {lazy:?} vs {eager:?}"
        );
        assert!(
            2 * lazy.bodies < eager.bodies,
            "steady-state lazy bodies {} should be well under eager bodies {}",
            lazy.bodies,
            eager.bodies
        );
        // Each node pulls a body at most once per rumor.
        assert!(lazy.pulls <= lazy.covered);
    }

    #[test]
    fn ttl_bounds_hops() {
        let mut rng = StdRng::seed_from_u64(8);
        let (_, hops, _) = simulate_spread(128, NodeId(0), eager_cfg(2, 3), &mut rng);
        assert!(hops <= 4, "TTL 3 allows at most 4 delivery waves, got {hops}");
    }

    #[test]
    fn tiny_ttl_limits_coverage() {
        let mut rng = StdRng::seed_from_u64(9);
        let (covered, _, _) = simulate_spread(128, NodeId(0), eager_cfg(2, 1), &mut rng);
        // origin + 2 first-hop + ≤4 second-hop.
        assert!(covered <= 7, "covered {covered}");
    }

    /// The duplicate-suppression memory bound: a long-lived router that
    /// relays rumors forever must hold at most `2 × seen_cap` ids — the
    /// unbounded `HashSet` it replaced grew by one entry per rumor ever
    /// seen.
    #[test]
    fn seen_set_is_bounded_by_generations() {
        let mut rng = StdRng::seed_from_u64(10);
        let peers: Vec<NodeId> = (0..8u32).map(NodeId).collect();
        let cap = 64;
        let cfg = GossipConfig {
            fanout: 2,
            ttl: 3,
            seen_cap: cap,
            mode: GossipMode::Eager,
            ..Default::default()
        };
        let mut r = GossipRouter::new(NodeId(1), cfg);
        for seq in 0..100_000u64 {
            let id = RumorId { origin: NodeId(0), seq };
            let _ = r.on_receive(id, 3, None, &peers, &mut rng);
            assert!(
                r.seen_count() <= 2 * cap,
                "seen grew to {} after {} rumors (cap {})",
                r.seen_count(),
                seq + 1,
                cap
            );
        }
        // Recent rumors are still suppressed...
        let recent = RumorId { origin: NodeId(0), seq: 99_999 };
        assert!(r.has_seen(recent));
        assert_eq!(r.on_receive(recent, 3, None, &peers, &mut rng), None);
        // ...while ids far outside the window have been evicted.
        let ancient = RumorId { origin: NodeId(0), seq: 0 };
        assert!(!r.has_seen(ancient), "eviction must eventually forget old ids");
    }

    /// Duplicates arriving while an id straddles the generation rotation
    /// are still suppressed (the previous generation stays searchable).
    #[test]
    fn duplicates_across_rotation_are_suppressed() {
        let mut rng = StdRng::seed_from_u64(11);
        let peers: Vec<NodeId> = (0..8u32).map(NodeId).collect();
        let cap = 16;
        let cfg = GossipConfig {
            fanout: 2,
            ttl: 3,
            seen_cap: cap,
            mode: GossipMode::Eager,
            ..Default::default()
        };
        let mut r = GossipRouter::new(NodeId(1), cfg);
        let marked = RumorId { origin: NodeId(0), seq: 0 };
        assert!(r.on_receive(marked, 3, None, &peers, &mut rng).is_some());
        // Fill exactly up to one rotation: `marked` moves to the previous
        // generation but must still be recognised.
        for seq in 1..cap as u64 {
            let _ = r.on_receive(RumorId { origin: NodeId(0), seq }, 3, None, &peers, &mut rng);
        }
        assert!(r.has_seen(marked));
        assert_eq!(r.on_receive(marked, 3, None, &peers, &mut rng), None);
    }

    /// Prune state stays bounded by the view no matter how many distinct
    /// peers push duplicates.
    #[test]
    fn demoted_set_is_bounded_by_the_view() {
        let peers: Vec<NodeId> = (0..10_000u32).map(NodeId).collect();
        let mut r = GossipRouter::new(NodeId(0), lazy_cfg(3, 1, 4));
        let mut rng = StdRng::seed_from_u64(3);
        let _ = r.originate(&peers, &mut rng);
        for p in 1..10_000u32 {
            r.demote(NodeId(p));
            assert!(r.lazy_links.len() <= r.view.len());
        }
    }

    proptest! {
        #[test]
        fn spread_never_exceeds_population(n in 2usize..80, seed in 0u64..32,
                                           fanout in 1usize..5, ttl in 0u8..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let (covered, _, _) =
                simulate_spread(n, NodeId(0), GossipConfig { fanout, ttl, mode: GossipMode::Eager, ..Default::default() }, &mut rng);
            prop_assert!(covered <= n);
            prop_assert!(covered >= 1); // origin always counts
        }

        #[test]
        fn message_complexity_is_fanout_bounded(n in 4usize..64, seed in 0u64..16) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = eager_cfg(3, 5);
            let (_, _, messages) = simulate_spread(n, NodeId(0), cfg, &mut rng);
            // Each node forwards a rumor at most once to ≤ fanout peers.
            prop_assert!(messages <= n * cfg.fanout);
        }

        /// Lazy and eager modes deliver the body to exactly the same node
        /// set when the fanout spans the population: the transport split
        /// changes *how* bodies move (push vs digest+pull), never *whether*
        /// they arrive. Checked over several successive rumors so the
        /// pruned-link steady state is exercised, not just the cold-start
        /// flood.
        #[test]
        fn lazy_delivers_the_exact_set_eager_delivers(n in 2usize..40, seed in 0u64..32,
                                                      eager_fanout in 0usize..3) {
            let mut eager_rng = StdRng::seed_from_u64(seed);
            let mut lazy_rng = StdRng::seed_from_u64(seed);
            let full = GossipConfig { fanout: n, ttl: 4, mode: GossipMode::Eager, ..Default::default() };
            let mut eager_sim = SpreadSim::new(n, full);
            let mut lazy_sim = SpreadSim::new(
                n,
                GossipConfig { mode: GossipMode::Lazy, eager_fanout, ..full },
            );
            for round in 0..4 {
                let eager = eager_sim.spread(NodeId(0), &mut eager_rng);
                let lazy = lazy_sim.spread(NodeId(0), &mut lazy_rng);
                prop_assert_eq!(eager.covered, n, "round {}", round);
                prop_assert_eq!(lazy.covered, n, "round {}", round);
                // Body traffic: eager floods ~n·(n-1) copies every round;
                // lazy never moves more and converges toward one per node.
                prop_assert!(lazy.bodies <= eager.bodies);
            }
        }

        /// In lazy mode steady state, bodies scale with coverage (~N), not
        /// with fanout × N: the redundancy rides on digests.
        #[test]
        fn lazy_bodies_scale_with_coverage(n in 8usize..64, seed in 0u64..16) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = GossipConfig {
                fanout: 4, ttl: 6, mode: GossipMode::Lazy, eager_fanout: 1, ..Default::default()
            };
            let mut sim = SpreadSim::new(n, cfg);
            for _ in 0..6 {
                let _ = sim.spread(NodeId(0), &mut rng);
            }
            let s = sim.spread(NodeId(0), &mut rng);
            // Every covered non-origin node needs at least one body; after
            // pruning, pushes land where they are needed plus one pull
            // reply per digest-served node — within 2× coverage instead of
            // fanout × coverage.
            prop_assert!(s.bodies >= s.covered - 1);
            prop_assert!(s.bodies <= 2 * s.covered);
            prop_assert!(s.messages <= n * cfg.fanout + 2 * n);
        }
    }
}
