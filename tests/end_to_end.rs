//! Cross-crate integration: the full IDEA stack on the simulator.

use idea::core::api::DeveloperApi;
use idea::prelude::*;

const OBJ: ObjectId = ObjectId(1);

fn cluster(n: usize, cfg: IdeaConfig, seed: u64) -> SimEngine<IdeaNode> {
    let nodes: Vec<IdeaNode> =
        (0..n).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[OBJ])).collect();
    SimEngine::new(Topology::planetlab(n, seed), SimConfig { seed, ..Default::default() }, nodes)
}

fn write(eng: &mut SimEngine<IdeaNode>, node: u32, delta: i64) {
    eng.with_node(NodeId(node), |p, ctx| {
        p.local_write(OBJ, delta, UpdatePayload::none(), ctx);
    });
}

fn warm(eng: &mut SimEngine<IdeaNode>, writers: usize) {
    for _ in 0..3 {
        for w in 0..writers as u32 {
            write(eng, w, 1);
            eng.run_for(SimDuration::from_millis(400));
        }
    }
    eng.run_for(SimDuration::from_secs(2));
}

#[test]
fn detect_quantify_resolve_lifecycle() {
    let mut eng = cluster(12, IdeaConfig::default(), 1);
    warm(&mut eng, 4);

    // Divergence shows up as sub-perfect levels on non-reference writers.
    for w in 0..4 {
        write(&mut eng, w, 3);
    }
    eng.run_for(SimDuration::from_secs(2));
    let before: Vec<ConsistencyLevel> = (0..4).map(|w| eng.node(NodeId(w)).level(OBJ)).collect();
    assert!(before.iter().any(|l| *l < ConsistencyLevel::PERFECT));

    // Resolution restores agreement end to end.
    eng.with_node(NodeId(2), |p, ctx| p.demand_active_resolution(OBJ, ctx));
    eng.run_for(SimDuration::from_secs(6));
    let metas: Vec<i64> = (0..4).map(|w| eng.node(NodeId(w)).report(OBJ).meta).collect();
    assert!(metas.windows(2).all(|m| m[0] == m[1]), "metas {metas:?}");
    let vv3 = eng.node(NodeId(3)).replica(OBJ).unwrap().version().clone();
    for w in 0..3 {
        let vvw = eng.node(NodeId(w)).replica(OBJ).unwrap().version().clone();
        assert_eq!(vvw.compare(&vv3), VvOrdering::Equal, "node {w} vector diverges");
    }
}

#[test]
fn hint_learning_survives_user_complaints() {
    let mut cfg = IdeaConfig::whiteboard(0.90);
    cfg.hint_delta = 0.03;
    let mut eng = cluster(8, cfg, 2);
    warm(&mut eng, 4);
    let floor0 = eng.node(NodeId(1)).hint().floor();
    for _ in 0..2 {
        eng.with_node(NodeId(1), |p, ctx| p.user_dissatisfied(OBJ, None, ctx));
        eng.run_for(SimDuration::from_secs(3));
    }
    let floor1 = eng.node(NodeId(1)).hint().floor();
    assert!(floor1 > floor0);
    assert_eq!(eng.node(NodeId(1)).hint().complaints(), 2);
}

#[test]
fn message_loss_does_not_wedge_the_protocol() {
    let mut eng = cluster(8, IdeaConfig::default(), 3);
    warm(&mut eng, 4);
    eng.set_loss_rate(0.15);
    for _ in 0..4 {
        for w in 0..4 {
            write(&mut eng, w, 1);
        }
        eng.run_for(SimDuration::from_secs(5));
    }
    // Detection deadlines cope with lost replies; a demanded resolution may
    // need retries but the system keeps making progress.
    eng.set_loss_rate(0.0);
    eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
    eng.run_for(SimDuration::from_secs(8));
    let metas: Vec<i64> = (0..4).map(|w| eng.node(NodeId(w)).report(OBJ).meta).collect();
    assert!(metas.windows(2).all(|m| m[0] == m[1]), "metas {metas:?}");
    assert!(eng.stats().dropped() > 0, "loss injection must have bitten");
}

#[test]
fn paused_node_catches_up_after_resume() {
    let mut eng = cluster(8, IdeaConfig::default(), 4);
    warm(&mut eng, 4);
    eng.pause(NodeId(1));
    for w in 0..4 {
        write(&mut eng, w, 2);
    }
    eng.run_for(SimDuration::from_secs(3));
    eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
    eng.run_for(SimDuration::from_secs(8));
    // Node 1 was paused through the whole round; resume replays its inbox.
    eng.resume(NodeId(1));
    eng.run_for(SimDuration::from_secs(8));
    let m1 = eng.node(NodeId(1)).report(OBJ).meta;
    let m3 = eng.node(NodeId(3)).report(OBJ).meta;
    assert_eq!(m1, m3, "resumed node must reconcile");
}

#[test]
fn developer_api_reconfigures_live_cluster() {
    let mut eng = cluster(6, IdeaConfig::default(), 5);
    warm(&mut eng, 4);
    eng.with_node(NodeId(0), |p, _| {
        p.set_consistency_metric(100.0, 10.0, SimDuration::from_secs(20)).unwrap();
        p.set_weight(0.5, 0.5, 0.0).unwrap();
        p.set_resolution(1).unwrap();
        p.set_hint(0.8).unwrap();
        p.set_background_freq(Some(SimDuration::from_secs(15))).unwrap();
    });
    let node = eng.node(NodeId(0));
    assert_eq!(node.config().policy, ResolutionPolicy::InvalidateBoth);
    assert_eq!(node.quantifier().bounds().order, 10.0);
    assert!((node.hint().floor().value() - 0.8).abs() < 1e-9);
}

#[test]
fn multiple_objects_have_independent_top_layers() {
    let a = ObjectId(1);
    let b = ObjectId(2);
    let cfg = IdeaConfig::default();
    let nodes: Vec<IdeaNode> =
        (0..8).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[a, b])).collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(8, 6),
        SimConfig { seed: 6, ..Default::default() },
        nodes,
    );
    // Nodes 0-1 write object a; nodes 4-5 write object b.
    for _ in 0..4 {
        for (node, object) in [(0u32, a), (1, a), (4, b), (5, b)] {
            eng.with_node(NodeId(node), |p, ctx| {
                p.local_write(object, 1, UpdatePayload::none(), ctx);
            });
        }
        eng.run_for(SimDuration::from_secs(2));
    }
    eng.run_for(SimDuration::from_secs(3));
    let top_a = eng.node(NodeId(0)).report(a).top_members;
    let top_b = eng.node(NodeId(4)).report(b).top_members;
    assert!(top_a.contains(&NodeId(0)) && top_a.contains(&NodeId(1)));
    assert!(!top_a.contains(&NodeId(4)), "object a's layer leaked writer of b: {top_a:?}");
    assert!(top_b.contains(&NodeId(4)) && top_b.contains(&NodeId(5)));
    assert!(!top_b.contains(&NodeId(0)), "object b's layer leaked writer of a: {top_b:?}");
}

#[test]
fn bottom_layer_sweep_rescues_hidden_updates() {
    let cfg = IdeaConfig {
        sweep_every: Some(1),
        sweep_deadline: SimDuration::from_secs(3),
        rollback_resolve: true,
        ..Default::default()
    };
    let mut eng = cluster(16, cfg, 7);
    warm(&mut eng, 4);
    // A bottom-layer node writes; nobody in the top layer knows.
    write(&mut eng, 12, 99);
    eng.run_for(SimDuration::from_secs(1));
    for _ in 0..5 {
        for w in 0..4 {
            write(&mut eng, w, 1);
        }
        eng.run_for(SimDuration::from_secs(5));
    }
    let rollbacks: u64 = (0..4).map(|w| eng.node(NodeId(w)).report(OBJ).rollbacks).sum();
    assert!(rollbacks >= 1, "the sweep must confirm the bottom-layer discrepancy");
}
