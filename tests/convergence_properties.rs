//! Property-style integration tests: random workloads against the full
//! stack, asserting the invariants every IDEA deployment must keep.

use idea::prelude::*;
use proptest::prelude::*;

const OBJ: ObjectId = ObjectId(1);

fn cluster(n: usize, cfg: IdeaConfig, seed: u64) -> SimEngine<IdeaNode> {
    let nodes: Vec<IdeaNode> =
        (0..n).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[OBJ])).collect();
    SimEngine::new(Topology::planetlab(n, seed), SimConfig { seed, ..Default::default() }, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Whatever the write schedule, a demanded resolution converges every
    /// top-layer replica onto the reference (highest-id) state.
    #[test]
    fn resolution_always_converges(
        seed in 0u64..1_000,
        schedule in prop::collection::vec((0u32..4, 1i64..10, 0u64..20_000u64), 4..24),
    ) {
        let mut eng = cluster(8, IdeaConfig::default(), seed);
        // Warm-up so the top layer forms.
        for _ in 0..3 {
            for w in 0..4u32 {
                eng.with_node(NodeId(w), |p, ctx| {
                    p.local_write(OBJ, 1, UpdatePayload::none(), ctx);
                });
                eng.run_for(SimDuration::from_millis(400));
            }
        }
        eng.run_for(SimDuration::from_secs(2));
        // Random conflicting writes at random moments.
        let mut ordered = schedule;
        ordered.sort_by_key(|&(_, _, at)| at);
        for (w, delta, at_ms) in ordered {
            eng.run_until(SimTime::from_secs(8) + SimDuration::from_millis(at_ms));
            eng.with_node(NodeId(w), |p, ctx| {
                p.local_write(OBJ, delta, UpdatePayload::none(), ctx);
            });
        }
        eng.run_for(SimDuration::from_secs(2));
        eng.with_node(NodeId(1), |p, ctx| p.demand_active_resolution(OBJ, ctx));
        eng.run_for(SimDuration::from_secs(10));

        let reference = eng.node(NodeId(3)).replica(OBJ).unwrap().version().clone();
        for w in 0..3u32 {
            let vv = eng.node(NodeId(w)).replica(OBJ).unwrap().version().clone();
            prop_assert_eq!(
                vv.compare(&reference), VvOrdering::Equal,
                "node {} diverges after resolution (seed {})", w, seed
            );
        }
    }

    /// Hint floors only move upward under complaints, regardless of the
    /// interleaving with write traffic.
    #[test]
    fn hint_floor_is_monotone_in_vivo(
        seed in 0u64..1_000,
        complaints in 1usize..5,
    ) {
        let mut eng = cluster(6, IdeaConfig::whiteboard(0.85), seed);
        let mut last = eng.node(NodeId(0)).hint().floor();
        for k in 0..complaints {
            eng.with_node(NodeId(0), |p, ctx| {
                p.local_write(OBJ, 1, UpdatePayload::none(), ctx);
            });
            eng.run_for(SimDuration::from_secs(1));
            eng.with_node(NodeId(0), |p, ctx| p.user_dissatisfied(OBJ, None, ctx));
            eng.run_for(SimDuration::from_secs(1));
            let now = eng.node(NodeId(0)).hint().floor();
            prop_assert!(now >= last, "floor regressed at complaint {}", k);
            last = now;
        }
    }

    /// Message loss never makes levels read *better* than lossless runs
    /// forever: after loss stops and a resolution runs, replicas agree.
    #[test]
    fn lossy_runs_recover(seed in 0u64..500, loss in 0.05f64..0.3) {
        let mut eng = cluster(8, IdeaConfig::default(), seed);
        for _ in 0..3 {
            for w in 0..4u32 {
                eng.with_node(NodeId(w), |p, ctx| {
                    p.local_write(OBJ, 1, UpdatePayload::none(), ctx);
                });
                eng.run_for(SimDuration::from_millis(400));
            }
        }
        eng.run_for(SimDuration::from_secs(2));
        eng.set_loss_rate(loss);
        for w in 0..4u32 {
            eng.with_node(NodeId(w), |p, ctx| {
                p.local_write(OBJ, 2, UpdatePayload::none(), ctx);
            });
        }
        eng.run_for(SimDuration::from_secs(5));
        eng.set_loss_rate(0.0);
        eng.with_node(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
        eng.run_for(SimDuration::from_secs(10));
        let metas: Vec<i64> =
            (0..4u32).map(|w| eng.node(NodeId(w)).report(OBJ).meta).collect();
        prop_assert!(metas.windows(2).all(|m| m[0] == m[1]), "metas {:?}", metas);
    }

    /// The consistency level is always a valid percentage and the reference
    /// node (highest id among writers) never reads below its peers' worst.
    #[test]
    fn levels_stay_well_formed(seed in 0u64..500, waves in 1usize..5) {
        let mut eng = cluster(6, IdeaConfig::default(), seed);
        for _ in 0..waves {
            for w in 0..4u32 {
                eng.with_node(NodeId(w), |p, ctx| {
                    p.local_write(OBJ, 1, UpdatePayload::none(), ctx);
                });
            }
            eng.run_for(SimDuration::from_secs(3));
            for w in 0..4u32 {
                let v = eng.node(NodeId(w)).level(OBJ).value();
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
