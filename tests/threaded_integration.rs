//! The IDEA protocol under real concurrency: the threaded engine drives the
//! same state machines over crossbeam channels with injected WAN latency.

use idea::prelude::*;
use std::thread;
use std::time::Duration;

const OBJ: ObjectId = ObjectId(1);

fn threaded_cluster(n: usize, seed: u64) -> ThreadedEngine<IdeaNode> {
    let nodes: Vec<IdeaNode> =
        (0..n).map(|i| IdeaNode::new(NodeId(i as u32), IdeaConfig::default(), &[OBJ])).collect();
    ThreadedEngine::start(
        Topology::planetlab(n, seed),
        ThreadedConfig { seed, time_scale: 0.02, ..Default::default() },
        nodes,
    )
}

#[test]
fn threaded_cluster_forms_top_layer_and_resolves() {
    let net = threaded_cluster(4, 1);
    for _ in 0..3 {
        for w in 0..4u32 {
            net.invoke(NodeId(w), move |p, ctx| {
                p.local_write(OBJ, 1, UpdatePayload::none(), ctx);
            });
            net.sleep_virtual(SimDuration::from_millis(400));
        }
    }
    net.sleep_virtual(SimDuration::from_secs(4));

    let members = net.query(NodeId(0), |p, _| p.report(OBJ).top_members);
    assert!(members.len() >= 3, "top layer too small on threads: {members:?}");

    for w in 0..4u32 {
        net.invoke(NodeId(w), move |p, ctx| {
            p.local_write(OBJ, 5, UpdatePayload::none(), ctx);
        });
    }
    net.sleep_virtual(SimDuration::from_secs(2));
    net.invoke(NodeId(0), |p, ctx| p.demand_active_resolution(OBJ, ctx));
    net.sleep_virtual(SimDuration::from_secs(8));
    thread::sleep(Duration::from_millis(300));

    let states = net.stop();
    let metas: Vec<i64> = states.iter().map(|s| s.report(OBJ).meta).collect();
    // Threaded runs are not deterministic; allow late stragglers but demand
    // that a majority agrees with the highest-id reference.
    let reference = metas[3];
    let agreeing = metas.iter().filter(|m| **m == reference).count();
    assert!(agreeing >= 3, "metas {metas:?}");
}

#[test]
fn threaded_engine_reports_stats() {
    let net = threaded_cluster(3, 2);
    for w in 0..3u32 {
        net.invoke(NodeId(w), move |p, ctx| {
            p.local_write(OBJ, 1, UpdatePayload::none(), ctx);
        });
    }
    net.sleep_virtual(SimDuration::from_secs(2));
    thread::sleep(Duration::from_millis(200));
    let snap = net.stats();
    let total: u64 = snap.per_class.iter().map(|(_, m, _)| *m).sum();
    assert!(total > 0, "traffic must be accounted");
    net.stop();
}

/// The sharded runtime: `THREADED_SHARDS` workers per node (default 2),
/// sharded mailboxes and routers. Disjoint objects are processed
/// concurrently while per-object ordering holds, so every object still
/// converges through its own detection/resolution rounds.
#[test]
fn sharded_threaded_cluster_converges_per_object() {
    let shards = shards_from_env(2);
    let n = 4usize;
    let objects: Vec<ObjectId> = (0..8u64).map(ObjectId).collect();
    let cfg = IdeaConfig { store_shards: shards, ..Default::default() };
    let nodes: Vec<IdeaNode> =
        (0..n).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &objects)).collect();
    let net = ShardedEngine::start(
        Topology::planetlab(n, 9),
        ThreadedConfig { seed: 9, time_scale: 0.02, shards },
        nodes,
    );
    assert_eq!(net.shards(), shards);
    assert_eq!(net.len(), n);

    // Warm every object's top layer, then write conflicting values.
    for _ in 0..3 {
        for w in 0..n as u32 {
            for &obj in &objects {
                let s = ShardId::of(obj, shards).index();
                net.invoke(NodeId(w), s, move |shard, ctx| {
                    shard.local_write(obj, 1, UpdatePayload::none(), ctx);
                });
            }
            net.sleep_virtual(SimDuration::from_millis(400));
        }
    }
    net.sleep_virtual(SimDuration::from_secs(4));

    for w in 0..n as u32 {
        for &obj in &objects {
            let s = ShardId::of(obj, shards).index();
            net.invoke(NodeId(w), s, move |shard, ctx| {
                shard.local_write(obj, 5, UpdatePayload::none(), ctx);
            });
        }
    }
    net.sleep_virtual(SimDuration::from_secs(2));
    for &obj in &objects {
        let s = ShardId::of(obj, shards).index();
        net.invoke(NodeId(0), s, move |shard, ctx| shard.demand_active_resolution(obj, ctx));
    }
    net.sleep_virtual(SimDuration::from_secs(8));
    thread::sleep(Duration::from_millis(300));

    // A sharded query observes the same state the worker wrote.
    let first = objects[0];
    let s = ShardId::of(first, shards).index();
    let meta = net.query(NodeId(0), s, move |shard, _| shard.report(first).meta);
    assert!(meta > 0, "worker-owned replica must reflect writes");

    let states = net.stop();
    assert_eq!(states.len(), n, "stop() reassembles every node from its shards");
    for &obj in &objects {
        let metas: Vec<i64> = states.iter().map(|st| st.report(obj).meta).collect();
        // Threaded runs are not deterministic; allow late stragglers but
        // demand that a majority agrees with the highest-id reference.
        let reference = metas[3];
        let agreeing = metas.iter().filter(|m| **m == reference).count();
        assert!(agreeing >= 3, "object {obj}: metas {metas:?}");
    }
}

#[test]
fn query_reads_consistent_state_from_node_thread() {
    let net = threaded_cluster(3, 3);
    net.invoke(NodeId(1), |p, ctx| {
        p.local_write(OBJ, 42, UpdatePayload::none(), ctx);
    });
    // query is serialised on the node's own thread, so it observes the write.
    let meta = net.query(NodeId(1), |p, _| p.report(OBJ).meta);
    assert_eq!(meta, 42);
    net.stop();
}
