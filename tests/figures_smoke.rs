//! Reduced-size versions of every paper experiment, asserting the shapes
//! the full bench harness regenerates. These are the repository's
//! regression net for the reproduction claims in EXPERIMENTS.md.

use idea::workload::experiments::{ablate, fig10, fig2, fig8, fig9, table2, table3};
use idea::workload::runner::{run_booking, BookingRunConfig, HintRunConfig};
use idea_types::SimDuration;

#[test]
fn fig7a_minimum_sits_just_below_the_hint() {
    let r = idea::workload::runner::run_hint(&HintRunConfig {
        nodes: 16,
        hint: 0.95,
        duration: SimDuration::from_secs(80),
        ..Default::default()
    });
    assert!(r.min_worst < 0.95, "min {}", r.min_worst);
    assert!(r.min_worst > 0.85, "min {}", r.min_worst);
    assert!(r.resolutions >= 1);
}

#[test]
fn fig7b_minimum_sits_just_below_the_lower_hint() {
    let r = idea::workload::runner::run_hint(&HintRunConfig {
        nodes: 16,
        hint: 0.85,
        duration: SimDuration::from_secs(80),
        ..Default::default()
    });
    assert!(r.min_worst < 0.85, "min {}", r.min_worst);
    assert!(r.min_worst > 0.72, "min {}", r.min_worst);
}

#[test]
fn fig8_reset_shifts_the_floor() {
    let r = fig8::run(7);
    assert!(fig8::shape_holds(&r, 0.08), "minima {:?}", fig8::half_minima(&r));
}

#[test]
fn table2_phase_split_matches_paper_shape() {
    let r = table2::run(7);
    assert!(table2::shape_holds(&r), "{r:?}");
}

#[test]
fn fig9_scales_linearly_under_a_second() {
    let points = fig9::run(6, 7);
    assert!(fig9::shape_holds(&points, 0.45), "{points:?}");
}

#[test]
fn table3_overhead_ratio_and_bandwidth() {
    let base = BookingRunConfig { nodes: 12, seed: 7, ..Default::default() };
    let r = table3::Table3Result {
        fast: run_booking(&BookingRunConfig { period: SimDuration::from_secs(20), ..base.clone() }),
        slow: run_booking(&BookingRunConfig { period: SimDuration::from_secs(40), ..base }),
    };
    assert!(table3::shape_holds(&r));
}

#[test]
fn fig10_frequency_consistency_tradeoff() {
    let base = BookingRunConfig { nodes: 12, seed: 7, ..Default::default() };
    let r = fig10::Fig10Result {
        fast: run_booking(&BookingRunConfig { period: SimDuration::from_secs(20), ..base.clone() }),
        slow: run_booking(&BookingRunConfig { period: SimDuration::from_secs(40), ..base }),
    };
    assert!(fig10::shape_holds(&r));
}

#[test]
fn fig2_protocol_ordering() {
    let rows = fig2::run(&fig2::TradeoffConfig {
        duration: SimDuration::from_secs(60),
        ..Default::default()
    });
    assert!(fig2::shape_holds(&rows), "{rows:?}");
}

#[test]
fn ablations_run_and_report() {
    assert!(ablate::report_coverage(&ablate::run_coverage(40)).contains("95"));
    assert!(ablate::report_bounds(&ablate::run_bounds()).contains("window"));
    let rows = ablate::run_parallel(6, 7);
    assert!(rows.iter().all(|r| r.parallel_ms < r.sequential_ms));
}
