//! The acceptance pin for the typed client layer: **one** session-based
//! application function, compiled once against [`EngineHandle`], exercised
//! unchanged on all three engines — the deterministic [`SimEngine`], the
//! per-node [`ThreadedEngine`], and the per-shard-worker [`ShardedEngine`].

use idea::prelude::*;
use std::thread;
use std::time::Duration;

const OBJ_A: ObjectId = ObjectId(1);
const OBJ_B: ObjectId = ObjectId(7);
const N: usize = 4;

/// The engine-agnostic application: configure through a typed spec, warm
/// the top layer, diverge, read at an explicit consistency, demand a
/// resolution, and report. Returns per-node `(meta, updates)` for both
/// objects plus the total resolutions initiated.
fn drive<E: EngineHandle>(
    eng: &mut E,
    sleep: impl Fn(&mut E, SimDuration),
) -> (Vec<(i64, usize)>, u64) {
    // Per-session configuration: a typed spec instead of integer codes.
    let spec = ConsistencySpec::builder()
        .weights(1.0, 1.0, 1.0)
        .resolution(ResolutionPolicy::HighestIdWins)
        .build()
        .expect("valid spec");
    for w in 0..eng.nodes() as u32 {
        Session::open(eng, NodeId(w)).configure(spec.clone()).expect("configure");
    }

    // Warm up both objects so the temperature overlay forms.
    for _ in 0..3 {
        for w in 0..eng.nodes() as u32 {
            let mut session = Session::open(eng, NodeId(w));
            session.object(OBJ_A).write(1, UpdatePayload::none()).expect("write A");
            session.object(OBJ_B).write(2, UpdatePayload::none()).expect("write B");
            sleep(eng, SimDuration::from_millis(400));
        }
    }
    sleep(eng, SimDuration::from_secs(3));

    // Conflicting writes diverge every replica.
    for w in 0..eng.nodes() as u32 {
        let mut session = Session::open(eng, NodeId(w));
        session.object(OBJ_A).write(10, UpdatePayload::none()).expect("write A");
    }
    sleep(eng, SimDuration::from_secs(2));

    // A consistency-aware read: on-demand probe when below the floor.
    let mut reader = Session::open(eng, NodeId(1))
        .read_consistency(ReadConsistency::AtLeast(ConsistencyLevel::new(0.99)));
    let read = reader.object(OBJ_A).read().expect("read");
    assert!(read.updates >= 1, "reader must see its own warm-up writes");
    sleep(eng, SimDuration::from_secs(1));

    // Demand a resolution and let the two-phase protocol converge everyone.
    Session::open(eng, NodeId(0)).object(OBJ_A).demand_resolution().expect("demand");
    sleep(eng, SimDuration::from_secs(8));

    let mut out = Vec::new();
    let mut resolutions = 0;
    for w in 0..eng.nodes() as u32 {
        let mut session = Session::open(eng, NodeId(w));
        let a = session.object(OBJ_A).report().expect("report A");
        let b = session.object(OBJ_B).report().expect("report B");
        out.push((a.meta, a.updates));
        out.push((b.meta, b.updates));
        resolutions += a.resolutions_initiated;
    }
    (out, resolutions)
}

/// Majority of nodes agreeing on OBJ_A's meta (threaded engines are not
/// deterministic; stragglers are tolerated, convergence of a majority is
/// not negotiable).
fn object_a_agreement(out: &[(i64, usize)]) -> usize {
    let metas: Vec<i64> = out.iter().step_by(2).map(|(m, _)| *m).collect();
    let reference = metas[metas.len() - 1];
    metas.iter().filter(|m| **m == reference).count()
}

#[test]
fn the_same_session_code_runs_on_the_sim_engine() {
    let nodes: Vec<IdeaNode> = (0..N)
        .map(|i| IdeaNode::new(NodeId(i as u32), IdeaConfig::whiteboard(0.0), &[OBJ_A, OBJ_B]))
        .collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(N, 9),
        SimConfig { seed: 9, ..Default::default() },
        nodes,
    );
    let (out, resolutions) = drive(&mut eng, |e, d| e.run_for(d));
    // Deterministic engine: everyone must agree exactly.
    assert_eq!(object_a_agreement(&out), N, "sim replicas diverge: {out:?}");
    assert!(resolutions >= 1, "the demanded resolution must complete");
}

#[test]
fn the_same_session_code_runs_on_the_threaded_engine() {
    let nodes: Vec<IdeaNode> = (0..N)
        .map(|i| IdeaNode::new(NodeId(i as u32), IdeaConfig::whiteboard(0.0), &[OBJ_A, OBJ_B]))
        .collect();
    let mut eng = ThreadedEngine::start(
        Topology::planetlab(N, 9),
        ThreadedConfig { seed: 9, time_scale: 0.02, ..Default::default() },
        nodes,
    );
    let (out, _) = drive(&mut eng, |e, d| e.sleep_virtual(d));
    thread::sleep(Duration::from_millis(300));
    assert!(object_a_agreement(&out) >= N - 1, "threaded replicas diverge: {out:?}");
    eng.stop();
}

#[test]
fn the_same_session_code_runs_on_the_sharded_engine() {
    let shards = shards_from_env(2);
    let cfg = IdeaConfig { store_shards: shards, ..IdeaConfig::whiteboard(0.0) };
    let nodes: Vec<IdeaNode> =
        (0..N).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &[OBJ_A, OBJ_B])).collect();
    let mut eng = ShardedEngine::start(
        Topology::planetlab(N, 9),
        ThreadedConfig { seed: 9, time_scale: 0.02, shards },
        nodes,
    );
    let (out, _) = drive(&mut eng, |e, d| e.sleep_virtual(d));
    thread::sleep(Duration::from_millis(300));
    assert!(object_a_agreement(&out) >= N - 1, "sharded replicas diverge: {out:?}");
    // OBJ_A and OBJ_B hash to different shards for shards > 1: the report
    // aggregation above already proves cross-shard routing works.
    eng.stop();
}

fn small_sharded_fleet(shards: usize) -> ShardedEngine<IdeaNode> {
    let cfg = IdeaConfig { store_shards: shards, ..IdeaConfig::whiteboard(0.9) };
    let objects: Vec<ObjectId> = (0..8u64).map(ObjectId).collect();
    let nodes: Vec<IdeaNode> =
        (0..2).map(|i| IdeaNode::new(NodeId(i as u32), cfg.clone(), &objects)).collect();
    ShardedEngine::start(
        Topology::lan(2),
        ThreadedConfig { seed: 1, time_scale: 0.01, shards },
        nodes,
    )
}

/// A rejected re-weighting dissatisfaction (unknown object) on the sharded
/// engine must mutate **nothing** — no shard's weights may move, matching
/// the single-worker engines' up-front checks.
#[test]
fn sharded_dissatisfied_rejects_atomically() {
    let mut eng = small_sharded_fleet(4);
    let r = eng.execute(
        NodeId(0),
        Command::Dissatisfied {
            object: ObjectId(99),
            new_weights: Some(Weights::new(0.1, 0.1, 0.8)),
        },
    );
    assert!(matches!(r, Response::Rejected { .. }), "unknown object must reject: {r:?}");
    let states = eng.stop();
    for (s, shard) in states[0].shards().iter().enumerate() {
        let w = shard.quantifier().weights();
        assert!(
            (w.staleness - 0.8).abs() > 1e-9,
            "rejected command leaked weights into shard {s}: {w:?}"
        );
    }
}

/// Re-weighting dissatisfaction must reach **every** shard worker on both
/// the blocking and the fire-and-forget path.
#[test]
fn sharded_dissatisfied_reweights_every_shard() {
    let obj = ObjectId(0);
    let mut eng = small_sharded_fleet(4);
    let before = Session::open(&mut eng, NodeId(0)).object(obj).report().expect("report");

    // Fire-and-forget path (the one that used to hit the owning shard only).
    Session::open(&mut eng, NodeId(0)).submit(Command::Dissatisfied {
        object: obj,
        new_weights: Some(Weights::new(0.2, 0.2, 0.6)),
    });
    std::thread::sleep(Duration::from_millis(400));

    let after = Session::open(&mut eng, NodeId(0)).object(obj).report().expect("report");
    assert!(after.hint_floor > before.hint_floor, "dissatisfaction must raise the floor");
    let states = eng.stop();
    for (s, shard) in states[0].shards().iter().enumerate() {
        let w = shard.quantifier().weights();
        assert!((w.staleness - 0.6).abs() < 1e-9, "weights not fanned out to shard {s}: {w:?}");
    }
}

#[test]
fn session_priority_feeds_priority_wins_resolution() {
    let nodes: Vec<IdeaNode> = (0..N)
        .map(|i| IdeaNode::new(NodeId(i as u32), IdeaConfig::whiteboard(0.0), &[OBJ_A]))
        .collect();
    let mut eng = SimEngine::new(
        Topology::planetlab(N, 5),
        SimConfig { seed: 5, ..Default::default() },
        nodes,
    );

    let spec = ConsistencySpec::builder()
        .resolution(ResolutionPolicy::PriorityWins)
        .build()
        .expect("valid spec");
    for w in 0..N as u32 {
        Session::open(&mut eng, NodeId(w)).configure(spec.clone()).expect("configure");
    }
    // Node 0 registers the highest priority fleet-wide through its session.
    Session::open(&mut eng, NodeId(0)).set_priority(9).expect("priority");

    for _ in 0..3 {
        for w in 0..N as u32 {
            Session::open(&mut eng, NodeId(w))
                .object(OBJ_A)
                .write(1, UpdatePayload::none())
                .expect("warm");
            eng.run_for(SimDuration::from_millis(400));
        }
    }
    eng.run_for(SimDuration::from_secs(2));
    // Diverge with per-node deltas, then resolve: node 0's replica must win
    // even though node 3 holds the highest id.
    for w in 0..N as u32 {
        Session::open(&mut eng, NodeId(w))
            .object(OBJ_A)
            .write(100 + w as i64, UpdatePayload::none())
            .expect("conflict");
    }
    eng.run_for(SimDuration::from_secs(1));
    Session::open(&mut eng, NodeId(1)).object(OBJ_A).demand_resolution().expect("demand");
    eng.run_for(SimDuration::from_secs(8));

    let reference = Session::open(&mut eng, NodeId(0)).object(OBJ_A).report().expect("report");
    for w in 1..N as u32 {
        let rep = Session::open(&mut eng, NodeId(w)).object(OBJ_A).report().expect("report");
        assert_eq!(rep.meta, reference.meta, "node {w} did not adopt the priority winner");
    }
    // The sanctioned state is the winner's replica: node 0's three warm-up
    // writes (delta 1 each) plus its conflict write (delta 100) = 103. Had
    // the highest id won instead, node 3's 100 + 3 delta would make it 106.
    assert_eq!(reference.meta, 103, "node 0's replica must be the reference");
}
