//! The Table-1 developer API in action: casting an application onto IDEA's
//! consistency metric, re-weighting, switching resolution policies and
//! background frequencies at runtime (§4.7).
//!
//! ```bash
//! cargo run --example adaptive_tuning
//! ```

use idea::core::api::DeveloperApi;
use idea::prelude::*;

fn main() {
    let object = ObjectId(1);
    let mut node = IdeaNode::new(NodeId(0), IdeaConfig::default(), &[object]);

    // set_consistency_metric: a numerical gap of 500, an order error of 20
    // or 30 s of staleness each saturate their member.
    node.set_consistency_metric(500.0, 20.0, SimDuration::from_secs(30)).unwrap();

    // set_weight: this application cares mostly about ordering.
    node.set_weight(0.2, 0.7, 0.1).unwrap();

    // set_resolution: 1 = invalidate both, 2 = user-ID based, 3 = priority.
    node.set_resolution(3).unwrap();
    node.set_priority(NodeId(2), 9); // node 2 is the supervisor

    // set_hint: hint-based control at 88 %.
    node.set_hint(0.88).unwrap();

    // set_background_freq: a safety net every 30 s.
    node.set_background_freq(Some(SimDuration::from_secs(30))).unwrap();

    println!("configured: {:?}", node.config().policy);
    println!("weights: {:?}", node.quantifier().weights());
    println!("bounds:  {:?}", node.quantifier().bounds());
    println!("hint floor: {}", node.hint().floor());

    // Quantify a few hypothetical error triples under this configuration.
    for (num, order, stale) in [(0.0, 0.0, 0), (100.0, 2.0, 5), (400.0, 10.0, 20)] {
        let triple = ErrorTriple::new(num, order, SimDuration::from_secs(stale));
        println!(
            "triple <num {num}, order {order}, stale {stale}s> -> level {}",
            node.quantifier().level(&triple)
        );
    }

    // The same API drives a live cluster: drop the node into an engine and
    // keep tuning while it runs.
    let nodes: Vec<IdeaNode> =
        (0..4).map(|i| IdeaNode::new(NodeId(i), IdeaConfig::default(), &[object])).collect();
    let mut net = SimEngine::new(Topology::lan(4), SimConfig::default(), nodes);
    net.with_node(NodeId(1), |n, _| {
        n.set_hint(0.95).unwrap();
        n.set_resolution(2).unwrap();
    });
    net.run_for(SimDuration::from_secs(1));
    println!("\nlive node 1 hint floor: {}", net.node(NodeId(1)).hint().floor());
}
