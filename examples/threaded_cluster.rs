//! The same IDEA protocol on real OS threads: one thread per node, crossbeam
//! channels as links, WAN latency injected by the router, time compressed
//! 100×. Demonstrates that the protocol code is engine-agnostic.
//!
//! ```bash
//! cargo run --example threaded_cluster
//! ```

use idea::prelude::*;
use std::thread;
use std::time::Duration;

fn main() {
    let object = ObjectId(1);
    let n = 4usize;
    let nodes: Vec<IdeaNode> =
        (0..n).map(|i| IdeaNode::new(NodeId(i as u32), IdeaConfig::default(), &[object])).collect();

    // time_scale 0.01: one virtual second takes 10 wall milliseconds.
    let net = ThreadedEngine::start(
        Topology::planetlab(n, 3),
        ThreadedConfig { seed: 3, time_scale: 0.01, ..Default::default() },
        nodes,
    );

    println!("warming up on {} threads...", n);
    for _ in 0..3 {
        for w in 0..n as u32 {
            net.invoke(NodeId(w), move |p, ctx| {
                p.local_write(object, 1, UpdatePayload::none(), ctx);
            });
            net.sleep_virtual(SimDuration::from_millis(400));
        }
    }
    net.sleep_virtual(SimDuration::from_secs(3));

    let members = net.query(NodeId(0), move |p, _| p.report(object).top_members);
    println!("top layer: {members:?}");

    // Conflicting writes, then a demanded resolution.
    for w in 0..n as u32 {
        net.invoke(NodeId(w), move |p, ctx| {
            p.local_write(object, 5, UpdatePayload::none(), ctx);
        });
    }
    net.sleep_virtual(SimDuration::from_secs(2));
    net.invoke(NodeId(0), move |p, ctx| p.demand_active_resolution(object, ctx));
    net.sleep_virtual(SimDuration::from_secs(6));
    // Give stragglers a moment of wall time.
    thread::sleep(Duration::from_millis(200));

    let states = net.stop();
    println!("\nafter resolution:");
    for (i, node) in states.iter().enumerate() {
        let rep = node.report(object);
        println!("node {i}: meta {} updates {} level {}", rep.meta, rep.updates, rep.level);
    }
    let metas: Vec<i64> = states.iter().map(|s| s.report(object).meta).collect();
    if metas.windows(2).all(|w| w[0] == w[1]) {
        println!("\nall replicas converged on the threaded runtime ✓");
    } else {
        println!("\nreplicas still settling (threaded runs are not deterministic)");
    }
}
