//! The same IDEA protocol on real OS threads — driven through the typed
//! client layer. `drive()` below is written once against [`EngineHandle`]
//! and runs unchanged on the plain per-node [`ThreadedEngine`] and on the
//! [`ShardedEngine`]'s per-shard workers: set `THREADED_SHARDS` > 1 to
//! switch engines (the CI matrix runs both).
//!
//! ```bash
//! cargo run --example threaded_cluster
//! THREADED_SHARDS=4 cargo run --example threaded_cluster
//! ```

use idea::prelude::*;
use std::thread;
use std::time::Duration;

const OBJECT: ObjectId = ObjectId(1);
const N: usize = 4;

/// The engine-agnostic application: warm the top layer, diverge, resolve —
/// all through sessions. `sleep` maps virtual time onto the engine's clock.
fn drive<E: EngineHandle>(eng: &mut E, sleep: impl Fn(&E, SimDuration)) {
    println!("warming up on {} nodes...", eng.nodes());
    for _ in 0..3 {
        for w in 0..N as u32 {
            Session::open(eng, NodeId(w)).object(OBJECT).post(1, UpdatePayload::none());
            sleep(eng, SimDuration::from_millis(400));
        }
    }
    sleep(eng, SimDuration::from_secs(3));

    let top = Session::open(eng, NodeId(0)).object(OBJECT).report().expect("report");
    println!("top layer: {:?}", top.top_members);

    // Conflicting writes, then a demanded resolution.
    for w in 0..N as u32 {
        Session::open(eng, NodeId(w)).object(OBJECT).post(5, UpdatePayload::none());
    }
    sleep(eng, SimDuration::from_secs(2));
    Session::open(eng, NodeId(0)).object(OBJECT).demand_resolution().expect("resolution");
    sleep(eng, SimDuration::from_secs(6));

    println!("\nafter resolution:");
    for w in 0..N as u32 {
        let rep = Session::open(eng, NodeId(w)).object(OBJECT).report().expect("report");
        println!("node {w}: meta {} updates {} level {}", rep.meta, rep.updates, rep.level);
    }
}

fn metas_converged(metas: &[i64]) -> bool {
    metas.windows(2).all(|w| w[0] == w[1])
}

fn main() {
    let shards = shards_from_env(1);
    // time_scale 0.01: one virtual second takes 10 wall milliseconds.
    let tcfg = ThreadedConfig { seed: 3, time_scale: 0.01, shards };
    let idea_cfg = IdeaConfig { store_shards: shards, ..Default::default() };
    let nodes: Vec<IdeaNode> =
        (0..N).map(|i| IdeaNode::new(NodeId(i as u32), idea_cfg.clone(), &[OBJECT])).collect();
    let topo = Topology::planetlab(N, 3);

    let metas: Vec<i64> = if shards > 1 {
        println!("running on ShardedEngine ({shards} shard workers per node)");
        let mut net = ShardedEngine::start(topo, tcfg, nodes);
        drive(&mut net, |e, d| e.sleep_virtual(d));
        thread::sleep(Duration::from_millis(200)); // stragglers
        let states = net.stop();
        states.iter().map(|s| s.report(OBJECT).meta).collect()
    } else {
        println!("running on ThreadedEngine (one worker per node)");
        let mut net = ThreadedEngine::start(topo, tcfg, nodes);
        drive(&mut net, |e, d| e.sleep_virtual(d));
        thread::sleep(Duration::from_millis(200)); // stragglers
        let states = net.stop();
        states.iter().map(|s| s.report(OBJECT).meta).collect()
    };

    if metas_converged(&metas) {
        println!("\nall replicas converged on the threaded runtime ✓");
    } else {
        println!("\nreplicas still settling (threaded runs are not deterministic)");
    }
}
