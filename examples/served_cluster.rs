//! A served IDEA cluster: the [`ShardedEngine`] behind a TCP
//! [`IdeaServer`], driven by remote white-board clients over real sockets.
//!
//! One client thread per node connects a [`RemoteEngine`] pool and draws
//! through the *same* `Session` API every in-process example uses — the
//! transport changes where the engine runs, not how applications talk to
//! it. After concurrent drawing diverges the replicas, one remote client
//! demands a resolution and everyone converges.
//!
//! ```bash
//! cargo run --release --example served_cluster
//! THREADED_SHARDS=4 cargo run --release --example served_cluster
//! ```

use idea::prelude::*;
use std::sync::Arc;
use std::thread;

const OBJECT: ObjectId = ObjectId(1);
const N: usize = 4;

fn main() {
    let shards = shards_from_env(2);
    // time_scale 0.01: one virtual second takes 10 wall milliseconds.
    let tcfg = ThreadedConfig { seed: 7, time_scale: 0.01, shards };
    let idea_cfg = IdeaConfig { store_shards: shards, ..IdeaConfig::whiteboard(0.0) };
    let nodes: Vec<IdeaNode> =
        (0..N).map(|i| IdeaNode::new(NodeId(i as u32), idea_cfg.clone(), &[OBJECT])).collect();

    let engine = Arc::new(ShardedEngine::start(Topology::planetlab(N, 7), tcfg, nodes));
    let server = IdeaServer::bind("127.0.0.1:0", engine.clone()).expect("bind loopback");
    let addr = server.local_addr();
    println!("serving a {N}-node cluster ({shards} shard workers per node) on {addr}");

    // One remote client per node: connect, draw three strokes, disconnect.
    let mut clients = Vec::new();
    for w in 0..N as u32 {
        let pacing = Arc::clone(&engine);
        clients.push(thread::spawn(move || {
            let mut remote = RemoteEngine::connect_pool(addr, 2).expect("connect client");
            assert_eq!(EngineHandle::nodes(&remote), N, "Hello carries the deployment size");
            for round in 0..3u16 {
                let mut session = Session::open(&mut remote, NodeId(w));
                session
                    .object(OBJECT)
                    .write(
                        1,
                        UpdatePayload::Stroke {
                            x: u16::from(w as u8),
                            y: round,
                            text: "hi".into(),
                        },
                    )
                    .expect("remote write");
                pacing.sleep_virtual(SimDuration::from_millis(400));
            }
        }));
    }
    for client in clients {
        client.join().expect("client thread");
    }
    engine.sleep_virtual(SimDuration::from_secs(3));
    println!("warm-up strokes drawn by {N} remote clients");

    // Conflicting writes, then a remotely demanded resolution.
    let mut remote = RemoteEngine::connect(addr).expect("connect driver");
    for w in 0..N as u32 {
        Session::open(&mut remote, NodeId(w)).object(OBJECT).post(5, UpdatePayload::none());
    }
    engine.sleep_virtual(SimDuration::from_secs(2));
    Session::open(&mut remote, NodeId(0)).object(OBJECT).demand_resolution().expect("resolution");
    engine.sleep_virtual(SimDuration::from_secs(6));

    println!("\nafter the remotely demanded resolution:");
    let mut metas = Vec::new();
    for w in 0..N as u32 {
        let rep = Session::open(&mut remote, NodeId(w)).object(OBJECT).report().expect("report");
        println!("node {w}: meta {} updates {} level {}", rep.meta, rep.updates, rep.level);
        metas.push(rep.meta);
    }
    println!("client traffic: {:?}", remote.stats());

    drop(remote);
    server.stop();
    let engine = Arc::try_unwrap(engine).ok().expect("server released the engine");
    let _ = engine.stop();

    // The threaded runtime is not deterministic; a straggler is tolerated,
    // majority convergence is not negotiable (this gates the CI smoke).
    let reference = metas[metas.len() - 1];
    let agreeing = metas.iter().filter(|m| **m == reference).count();
    if agreeing >= N - 1 {
        println!("\nreplicas converged over TCP ✓");
    } else {
        eprintln!("\nreplicas diverged: {metas:?}");
        std::process::exit(1);
    }
}
