//! The airline booking fleet (§3.2/§5.2): stale local views oversell, the
//! automatic controller tunes the background-resolution frequency between
//! the oversell and undersell hazards.
//!
//! ```bash
//! cargo run --example booking_service
//! ```

use idea::prelude::*;

fn main() {
    let record = ObjectId(5);
    let flight = 501u32;
    let capacity = 40u32;
    let servers = 4usize;

    let fleet: Vec<BookingServer> = (0..servers)
        .map(|i| {
            BookingServer::new(
                NodeId(i as u32),
                record,
                flight,
                capacity,
                SimDuration::from_secs(20),
            )
        })
        .collect();
    let mut net = SimEngine::new(Topology::planetlab(servers, 23), SimConfig::default(), fleet);

    // Customers hit all four servers concurrently.
    let mut accepted = 0u32;
    let mut locked = 0u64;
    for second in 0..120u64 {
        net.run_until(SimTime::from_secs(second));
        let server = (second % servers as u64) as u32;
        let (outcome, _) = net.with_node(NodeId(server), |s, ctx| s.try_book(1, 25_000, ctx));
        match outcome {
            BookOutcome::Accepted { .. } => accepted += 1,
            BookOutcome::Locked => locked += 1,
            BookOutcome::SoldOut => {}
        }
        if second % 30 == 29 {
            let sold_global: u32 =
                (0..servers as u32).map(|s| net.node(NodeId(s)).accepted_seats()).sum();
            let view0 = net.node(NodeId(0)).known_sold();
            println!(
                "t={second:>3}s sold(global)={sold_global:>3} node0-view={view0:>3} level={}",
                net.node(NodeId(0)).idea().level(record)
            );
        }
    }
    net.run_for(SimDuration::from_secs(5));

    let sold: u32 = (0..servers as u32).map(|s| net.node(NodeId(s)).accepted_seats()).sum();
    println!(
        "\ncapacity {capacity}, sold {sold}, accepted here {accepted}, locked rejections {locked}"
    );
    if sold > capacity {
        println!(
            "OVERSOLD by {} — frequency was too low; teaching the controller...",
            sold - capacity
        );
        let new_period = net.with_node(NodeId(0), |s, _| s.report_oversell());
        println!(
            "controller period now {new_period} (window {:?})",
            net.node(NodeId(0)).controller().window()
        );
    } else {
        println!("no oversell at this frequency");
    }

    // Formula 4: what frequency would a 20 % cap on 1 Mbit/s allow, given
    // the measured per-round message cost?
    let msgs = net.stats().resolution_messages();
    let rounds = net.node(NodeId(0)).report().resolutions_initiated.max(1);
    let c_bits = (msgs as f64 / rounds as f64) * 1024.0 * 8.0;
    let rate = idea::core::resolution::formula4_optimal_rate(1e6, 0.2, c_bits);
    println!(
        "\nmeasured round cost ≈ {c_bits:.0} bits → Formula-4 optimal rate {rate:.2} rounds/s"
    );
}
