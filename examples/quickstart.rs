//! Quickstart: four replicas, one conflict, one adaptive resolution —
//! driven through the typed client layer (sessions + object handles).
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! The session code below is engine-agnostic: `Session::open` works
//! identically against `SimEngine`, `ThreadedEngine` and `ShardedEngine`
//! (see `examples/threaded_cluster.rs` for the same API on real threads,
//! and `examples/whiteboard_session.rs` for the low-level closure escape
//! hatch).

use idea::prelude::*;

fn main() {
    // A 4-node PlanetLab-like deployment replicating one shared object.
    let object = ObjectId(1);
    let cfg = IdeaConfig::default();
    let nodes: Vec<IdeaNode> =
        (0..4).map(|i| IdeaNode::new(NodeId(i), cfg.clone(), &[object])).collect();
    let mut net = SimEngine::new(Topology::planetlab(4, 42), SimConfig::default(), nodes);

    // Warm up: every node writes a few times so the temperature overlay
    // (the top layer) forms around the active writers.
    println!("warming up the top layer...");
    for _ in 0..3 {
        for w in 0..4u32 {
            let mut session = Session::open(&mut net, NodeId(w));
            session.object(object).write(1, UpdatePayload::none()).expect("hosted object");
            net.run_for(SimDuration::from_millis(400));
        }
    }
    net.run_for(SimDuration::from_secs(2));
    let top = Session::open(&mut net, NodeId(0)).object(object).report().expect("report");
    println!("top layer at node 0: {:?}", top.top_members);

    // Conflicting concurrent writes: every replica diverges.
    for w in 0..4u32 {
        let mut session = Session::open(&mut net, NodeId(w));
        session.object(object).write(10 + w as i64, UpdatePayload::none()).expect("hosted object");
    }
    net.run_for(SimDuration::from_secs(2));
    for w in 0..4u32 {
        // A consistency-aware read: serve the local replica, and launch an
        // on-demand probe when the estimate sits below 95 %.
        let mut session = Session::open(&mut net, NodeId(w))
            .read_consistency(ReadConsistency::AtLeast(ConsistencyLevel::new(0.95)));
        let read = session.object(object).read().expect("hosted object");
        println!("node {w}: level {} meta {} (probed: {})", read.level, read.meta, read.probed);
    }

    // A user demands resolution; the two-phase protocol converges everyone
    // to the reference state (highest node id wins by default).
    println!("\ndemanding active resolution from node 0...");
    Session::open(&mut net, NodeId(0)).object(object).demand_resolution().expect("hosted object");
    net.run_for(SimDuration::from_secs(5));
    for w in 0..4u32 {
        let rep = Session::open(&mut net, NodeId(w)).object(object).report().expect("report");
        println!("node {w}: level {} meta {}", rep.level, rep.meta);
    }

    let record = &net.node(NodeId(0)).resolution_log()[0];
    println!(
        "\nresolution: phase1 dispatch {}, phase1 acked {}, phase2 {}",
        record.phase1_dispatch, record.phase1_acked, record.phase2
    );
    println!(
        "messages: {} detection, {} resolution-control, {} transfer",
        net.stats().messages(idea::net::MsgClass::Detect),
        net.stats().messages(idea::net::MsgClass::ResolutionCtl),
        net.stats().messages(idea::net::MsgClass::Transfer),
    );
}
