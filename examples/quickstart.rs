//! Quickstart: four replicas, one conflict, one adaptive resolution.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use idea::prelude::*;

fn main() {
    // A 4-node PlanetLab-like deployment replicating one shared object.
    let object = ObjectId(1);
    let cfg = IdeaConfig::default();
    let nodes: Vec<IdeaNode> =
        (0..4).map(|i| IdeaNode::new(NodeId(i), cfg.clone(), &[object])).collect();
    let mut net = SimEngine::new(Topology::planetlab(4, 42), SimConfig::default(), nodes);

    // Warm up: every node writes a few times so the temperature overlay
    // (the top layer) forms around the active writers.
    println!("warming up the top layer...");
    for _ in 0..3 {
        for w in 0..4u32 {
            net.with_node(NodeId(w), |n, ctx| {
                n.local_write(object, 1, UpdatePayload::none(), ctx);
            });
            net.run_for(SimDuration::from_millis(400));
        }
    }
    net.run_for(SimDuration::from_secs(2));
    println!("top layer at node 0: {:?}", net.node(NodeId(0)).report(object).top_members);

    // Conflicting concurrent writes: every replica diverges.
    for w in 0..4u32 {
        net.with_node(NodeId(w), |n, ctx| {
            n.local_write(object, 10 + w as i64, UpdatePayload::none(), ctx);
        });
    }
    net.run_for(SimDuration::from_secs(2));
    for w in 0..4u32 {
        let rep = net.node(NodeId(w)).report(object);
        println!("node {w}: level {} meta {}", rep.level, rep.meta);
    }

    // A user demands resolution; the two-phase protocol converges everyone
    // to the reference state (highest node id wins by default).
    println!("\ndemanding active resolution from node 0...");
    net.with_node(NodeId(0), |n, ctx| n.demand_active_resolution(object, ctx));
    net.run_for(SimDuration::from_secs(5));
    for w in 0..4u32 {
        let rep = net.node(NodeId(w)).report(object);
        println!("node {w}: level {} meta {}", rep.level, rep.meta);
    }

    let record = &net.node(NodeId(0)).resolution_log()[0];
    println!(
        "\nresolution: phase1 dispatch {}, phase1 acked {}, phase2 {}",
        record.phase1_dispatch, record.phase1_acked, record.phase2
    );
    println!(
        "messages: {} detection, {} resolution-control, {} transfer",
        net.stats().messages(idea::net::MsgClass::Detect),
        net.stats().messages(idea::net::MsgClass::ResolutionCtl),
        net.stats().messages(idea::net::MsgClass::Transfer),
    );
}
