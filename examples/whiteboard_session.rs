//! A collaborative white-board session (the paper's §3.1/§5.1 scenario):
//! participants draw, consistency decays, the hint-based controller keeps
//! it above the floor, and an unhappy user teaches IDEA a higher floor.
//!
//! This example deliberately keeps the **low-level closure escape hatch**
//! (`SimEngine::with_node` with a live protocol context) instead of the
//! typed `Session`/`ObjectHandle` client API the other examples use: the
//! white-board client exposes app-specific verbs (`draw`, `complain`) that
//! run *inside* the engine callback. Prefer sessions unless you need this
//! kind of in-callback composition — see `examples/quickstart.rs` and
//! `examples/threaded_cluster.rs` for the session form.
//!
//! ```bash
//! cargo run --example whiteboard_session
//! ```

use idea::prelude::*;

fn main() {
    let board = ObjectId(1);
    let participants = 6usize;
    // Hint 0.92: IDEA resolves whenever a participant's level dips below.
    let clients: Vec<WhiteboardClient> =
        (0..participants).map(|i| WhiteboardClient::new(NodeId(i as u32), board, 0.92)).collect();
    let mut net =
        SimEngine::new(Topology::planetlab(participants, 11), SimConfig::default(), clients);

    // Three participants sketch concurrently for a minute.
    let phrases = ["alpha", "beta", "gamma"];
    for round in 0..12u64 {
        for (i, phrase) in phrases.iter().enumerate() {
            net.with_node(NodeId(i as u32), |c, ctx| {
                c.draw(round as u16, i as u16, phrase, ctx);
            });
        }
        net.run_for(SimDuration::from_secs(5));
        if round % 4 == 3 {
            let rep = net.node(NodeId(0)).report();
            println!(
                "t={:>3}s level {} floor {} resolutions {}",
                (round + 1) * 5,
                rep.level,
                rep.hint_floor,
                rep.resolutions_initiated
            );
        }
    }

    // Participant 1 is still unhappy about ordering: complain, shifting
    // weight onto order error AND raising the floor by Δ (§5.1's "do both").
    println!("\nparticipant 1 complains (re-weight + boost)...");
    net.with_node(NodeId(1), |c, ctx| {
        c.complain(Some(Weights::new(0.1, 0.8, 0.1)), ctx);
    });
    net.run_for(SimDuration::from_secs(5));
    let rep = net.node(NodeId(1)).report();
    println!("new floor at participant 1: {}", rep.hint_floor);

    // The active participants' boards agree on the winning strokes
    // (bottom-layer nodes only catch up when they read or get swept).
    net.run_for(SimDuration::from_secs(5));
    let reference = net.node(NodeId(2)).render();
    let mine = net.node(NodeId(0)).render();
    let agree = reference.iter().filter(|(k, v)| mine.get(k) == Some(v)).count();
    println!(
        "\nboard agreement between participants 0 and 2: {agree}/{} cells",
        reference.len().max(1)
    );
}
